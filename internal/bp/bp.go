// Package bp implements Buzz's belief-propagation decoder (§6c, Alg. 1):
// a gain-driven bit-flipping search over the bipartite graph whose left
// vertices are the K tags' bits at one message position and whose right
// vertices are the L received collision symbols.
//
// Given the observation y = D·H·b + n, the decoder seeks the binary
// vector b̂ minimizing ‖D·H·b̂ − y‖². It maintains, for every bit i, the
// gain G_i — the reduction in squared error from flipping bit i — and
// repeatedly flips the highest-gain bit until no flip helps. Because D is
// sparse, a flip only perturbs the symbols tag i participates in, so only
// the gains of tags sharing a symbol with i ("neighbors of neighbors" in
// the paper's graph) need updating.
//
// The incremental identity doing the work: with residual r = y − D·H·b̂,
// flipping bit i changes b̂_i by δ ∈ {+1, −1} and
//
//	G_i = ‖r‖² − ‖r − δ·h_i·d_i‖² = 2δ·Re⟨h_i·d_i, r⟩ − |h_i|²·w_i
//
// where d_i is column i of D and w_i its weight. Two further structural
// facts keep every step cheap:
//
//   - Re⟨h_i·d_i, r⟩ = Re(conj(h_i)·S_i) where S_i = Σ_{rows ∋ i} r[row].
//     The search maintains S_i incrementally: a flip of bit j changes
//     every touched residual entry by the same constant −δ·h_j, so each
//     neighbor's S update is one complex subtraction — O(1) instead of
//     re-accumulating the O(w_i) correlation.
//   - The "flip the highest-gain bit" selection runs on a tournament
//     tree over the gain table (argmax with ties broken toward the lower
//     index, exactly the order the straight scan produced), so a flip
//     costs O(touched·log K) instead of an O(K) rescan per flip.
//
// CRC-gated freezing (§6d): once a tag's message passes its checksum in
// the outer loop, the caller locks that tag. Locked bits get gain −∞ so
// later flips can never undo a verified message — the paper's
// "set their gains to be negative infinite" interference-cancellation
// trick.
//
// The graph itself is rateless-friendly: the outer loop grows it one
// collision row at a time with AppendRow (O(colliders)), and Session
// (session.go) carries each bit position's residual, S-sums and gains
// across slots so a new collision costs O(colliders) per position rather
// than a from-scratch rebuild.
package bp

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/prng"
	"repro/internal/scratch"
)

// Graph is the decoding graph for one block of collisions: the sparse
// participation structure D plus the tags' channel taps. It grows one
// row per collision slot (AppendRow) and, under a coherence-windowed
// decode, retires the oldest (RetireRow); every adjacency list owns its
// backing storage with power-of-two headroom, so a steady-state transfer
// (same shape as a previous one on the same Graph) allocates nothing.
type Graph struct {
	// K is the number of tags (left vertices).
	K int
	// L is the number of collision symbols (right vertices).
	L int
	// colRows[i] lists the symbols tag i participates in.
	colRows [][]int
	// rowCols[j] lists the tags participating in symbol j.
	rowCols [][]int
	// rowActive[j] is rowCols[j] minus deactivated (CRC-locked) tags —
	// the flip fan-out's view. A locked tag's bits never change and its
	// gain is pinned at −∞, so the descent has no reason to update its
	// sums; dropping it here makes late-transfer flips (when most tags
	// are verified) touch only the remaining stragglers.
	rowActive   [][]int
	deactivated []bool
	// activeRows lists (ascending) the rows whose rowActive is still
	// non-empty — the only rows a restart build or re-descent can ever
	// touch. Rows whose every collider has locked drop out; their
	// residual entries are frozen and the Session carries their error
	// contribution as a per-position constant.
	activeRows []int
	// flatTags/flatStart are a CSR snapshot of the active adjacency,
	// rebuilt by SnapshotActive once per slot: flatTags[flatStart[x] :
	// flatStart[x+1]] are the active tags of activeRows[x], packed
	// contiguously so the restart builder streams one array instead of
	// chasing per-row slice headers.
	flatTags  []int
	flatStart []int
	// newlyInactive accumulates rows emptied by DeactivateTag calls
	// until the caller consumes them (TakeNewlyInactive).
	newlyInactive []int
	// retired counts the dead prefix rows dropped by RetireRow: rows
	// [0, retired) have left every adjacency list but keep their indices,
	// so L and all later row numbers never shift under a caller's cached
	// per-row state. The graph invariant "rows only append" becomes
	// "live rows are the window [retired, L)".
	retired int
	// spare recycles retired rows' adjacency backing: row indices are
	// never reused, so without it a sliding window would allocate fresh
	// row storage every slot forever. RetireRow pushes, AppendRow pops —
	// the windowed steady state is allocation-free like the growing one.
	spare [][]int
	// adjSlab and colSlab back ReserveAdjacency's pre-carved per-row
	// adjacency regions and per-tag row lists; zero until a caller
	// reserves, after which the append paths stop touching the heap.
	adjSlab []int
	colSlab []int
	// Soft stale-tap down-weighting — the per-tag coherence window's
	// soft mode. Rows of tag i with index below staleCut[i] are "stale":
	// older than the tag's coherence window, so the current tap h_i is a
	// poor model of what the tag transmitted there. Instead of removing
	// the tag from those rows (RetireTagRows, the hard mode), soft mode
	// scales its tap in them by softAlpha[i] ∈ [0, 1] — a shrinkage of
	// the stale contribution toward zero, sized by the drift the session
	// banked against the tag (Session.SoftRetireTag derives α from the
	// banked drift ratio). All weights are 1 until SetSoftCut arms the
	// mode, and every kernel keeps its branch-free fast path when soft
	// is off, so unwindowed decodes are byte-identical to before.
	soft      bool
	staleCut  []int
	softAlpha []float64
	// staleCnt[i] counts tag i's live stale rows (the colRows[i] prefix
	// below staleCut[i]) — the bookkeeping behind the effective |h|²·w
	// constant wPow[i] = |h_i|²·(α_i²·stale + fresh).
	staleCnt []int
	// anyStale reports that at least one tag has a nonzero stale cut:
	// the Session's incremental patch paths (RetapAll, Retire) are not
	// weight-aware, so they fall back to a rebuild while this holds.
	anyStale bool
	// taps[i] is tag i's channel coefficient h_i.
	taps []complex128
	// tapPower[i] caches |h_i|².
	tapPower []float64
	// tapRe and tapIm cache Re(h_i) and Im(h_i) — the hoisted conjugate
	// taps of the correlation kernels: Re(conj(h)·s) = Re(h)·Re(s) +
	// Im(h)·Im(s), two real multiplies instead of a complex one.
	tapRe, tapIm []float64
	// wPow[i] caches |h_i|²·w_i — the gain formula's constant term,
	// updated as rows append so gainOf is pure arithmetic on loads.
	wPow []float64
}

// NewGraph builds the decoding graph from the participation matrix D
// (rows = slots, cols = tags) and the channel taps. It panics on a
// tap/column count mismatch: decoding with misaligned channels would
// produce silent garbage.
func NewGraph(d *bits.Matrix, taps []complex128) *Graph {
	g := &Graph{}
	g.Rebuild(d, taps)
	return g
}

// Reset empties the graph to K tags and zero rows, keeping every
// adjacency list's capacity, and installs the taps. The rateless loop
// calls it once per transfer on a long-lived Graph and then grows the
// rows back with AppendRow.
func (g *Graph) Reset(k int, taps []complex128) {
	if k != len(taps) {
		panic(fmt.Sprintf("bp: graph has %d columns but %d taps supplied", k, len(taps)))
	}
	if cap(g.colRows) < k {
		next := make([][]int, k, scratch.CeilPow2(k))
		copy(next, g.colRows)
		g.colRows = next
	}
	g.colRows = g.colRows[:k]
	for i := range g.colRows {
		g.colRows[i] = g.colRows[i][:0]
	}
	g.rowCols = g.rowCols[:0]
	g.rowActive = g.rowActive[:0]
	g.activeRows = g.activeRows[:0]
	g.newlyInactive = g.newlyInactive[:0]
	if cap(g.deactivated) < k {
		g.deactivated = make([]bool, k, scratch.CeilPow2(k))
	}
	g.deactivated = g.deactivated[:k]
	clear(g.deactivated)
	if cap(g.staleCut) < k {
		g.staleCut = make([]int, k, scratch.CeilPow2(k))
		g.softAlpha = make([]float64, k, scratch.CeilPow2(k))
		g.staleCnt = make([]int, k, scratch.CeilPow2(k))
	}
	g.staleCut = g.staleCut[:k]
	g.softAlpha = g.softAlpha[:k]
	g.staleCnt = g.staleCnt[:k]
	clear(g.staleCut)
	clear(g.staleCnt)
	for i := range g.softAlpha {
		g.softAlpha[i] = 1
	}
	g.soft = false
	g.anyStale = false
	g.K = k
	g.L = 0
	g.retired = 0
	g.SetTaps(taps)
}

// alphaAt returns the model weight of tag i's tap in row r: softAlpha[i]
// when the row is stale under the soft per-tag window, 1 otherwise.
func (g *Graph) alphaAt(r, i int) float64 {
	if r < g.staleCut[i] {
		return g.softAlpha[i]
	}
	return 1
}

// AnyStale reports whether any tag currently has soft-down-weighted
// stale rows; the Session's weight-unaware incremental patches must
// take their rebuild fall-backs while it holds.
func (g *Graph) AnyStale() bool { return g.anyStale }

// SetTaps replaces the channel taps without touching the collision
// structure — the decision-directed channel-refinement path re-taps the
// graph every slot while D keeps growing incrementally.
func (g *Graph) SetTaps(taps []complex128) {
	if len(taps) != g.K {
		panic(fmt.Sprintf("bp: SetTaps got %d taps for %d columns", len(taps), g.K))
	}
	g.taps = append(g.taps[:0], taps...)
	g.tapPower = g.tapPower[:0]
	g.tapRe = g.tapRe[:0]
	g.tapIm = g.tapIm[:0]
	for _, h := range taps {
		re, im := real(h), imag(h)
		g.tapPower = append(g.tapPower, re*re+im*im)
		g.tapRe = append(g.tapRe, re)
		g.tapIm = append(g.tapIm, im)
	}
	g.wPow = g.wPow[:0]
	for i := range taps {
		g.wPow = append(g.wPow, g.tapPower[i]*g.effWeight(i))
	}
}

// effWeight returns tag i's effective participation weight: the plain
// degree w_i, or α_i²·stale + fresh under soft down-weighting. The
// non-soft form is exactly float64(w_i), so existing decodes are
// untouched.
func (g *Graph) effWeight(i int) float64 {
	w := len(g.colRows[i])
	if !g.soft || g.staleCnt[i] == 0 {
		return float64(w)
	}
	a := g.softAlpha[i]
	return a*a*float64(g.staleCnt[i]) + float64(w-g.staleCnt[i])
}

// RetapTag installs a new tap for tag i, updating the derived caches
// (|h|², hoisted conjugate parts, |h|²·w) in O(1). Callers owning
// cached descent state must patch or rebuild it themselves — that is
// Session.RetapAll's job.
func (g *Graph) RetapTag(i int, h complex128) {
	re, im := real(h), imag(h)
	g.taps[i] = h
	g.tapPower[i] = re*re + im*im
	g.tapRe[i], g.tapIm[i] = re, im
	g.wPow[i] = g.tapPower[i] * g.effWeight(i)
}

// ReserveTags grows the per-tag buffers' capacity for up to kCap tags
// without changing K, so mid-transfer AddTags up to the cap allocate
// nothing — the admission-time sizing behind Session.Reserve.
func (g *Graph) ReserveTags(kCap int) {
	if kCap <= cap(g.colRows) &&
		kCap <= cap(g.deactivated) && kCap <= cap(g.staleCut) &&
		kCap <= cap(g.taps) {
		return
	}
	g.colRows = reserveCap(g.colRows, kCap)
	g.deactivated = reserveCap(g.deactivated, kCap)
	g.staleCut = reserveCap(g.staleCut, kCap)
	g.softAlpha = reserveCap(g.softAlpha, kCap)
	g.staleCnt = reserveCap(g.staleCnt, kCap)
	g.taps = reserveCap(g.taps, kCap)
	g.tapPower = reserveCap(g.tapPower, kCap)
	g.tapRe = reserveCap(g.tapRe, kCap)
	g.tapIm = reserveCap(g.tapIm, kCap)
	g.wPow = reserveCap(g.wPow, kCap)
}

// reserveCap grows buf's capacity to at least n, preserving contents
// and length.
func reserveCap[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf
	}
	next := make([]T, len(buf), scratch.CeilPow2(n))
	copy(next, buf)
	return next
}

// AddTag grows the graph by one column: a tag joining the round
// mid-transfer, with no participation yet, active, carrying the given
// tap. Existing rows are untouched (the tag was silent in them).
func (g *Graph) AddTag(h complex128) {
	k := g.K
	if k < cap(g.colRows) {
		g.colRows = g.colRows[:k+1]
		g.colRows[k] = g.colRows[k][:0]
	} else {
		g.colRows = append(g.colRows, nil)
	}
	g.deactivated = append(g.deactivated, false)
	g.staleCut = append(g.staleCut, 0)
	g.softAlpha = append(g.softAlpha, 1)
	g.staleCnt = append(g.staleCnt, 0)
	re, im := real(h), imag(h)
	g.taps = append(g.taps, h)
	g.tapPower = append(g.tapPower, re*re+im*im)
	g.tapRe = append(g.tapRe, re)
	g.tapIm = append(g.tapIm, im)
	g.wPow = append(g.wPow, 0)
	g.K = k + 1
}

// AppendRow grows the graph by one collision row: row[i] reports whether
// tag i participates in the new symbol. Cost is O(K) for the scan and
// O(colliders) for the adjacency updates; storage is reused across
// Reset cycles.
func (g *Graph) AppendRow(row bits.Vector) {
	if len(row) != g.K {
		panic(fmt.Sprintf("bp: AppendRow length %d != K %d", len(row), g.K))
	}
	r := g.L
	if r < cap(g.rowCols) {
		g.rowCols = g.rowCols[:r+1]
	} else {
		g.rowCols = append(g.rowCols, nil)
	}
	if r < cap(g.rowActive) {
		g.rowActive = g.rowActive[:r+1]
	} else {
		g.rowActive = append(g.rowActive, nil)
	}
	rc := g.rowCols[r]
	if rc == nil {
		rc = g.popSpare()
	}
	rc = rc[:0]
	ra := g.rowActive[r]
	if ra == nil {
		ra = g.popSpare()
	}
	ra = ra[:0]
	for i, on := range row {
		if on {
			rc = append(rc, i)
			g.colRows[i] = append(g.colRows[i], r)
			g.wPow[i] += g.tapPower[i]
			if !g.deactivated[i] {
				ra = append(ra, i)
			}
		}
	}
	g.rowCols[r] = rc
	g.rowActive[r] = ra
	if len(ra) > 0 {
		g.activeRows = append(g.activeRows, r)
	}
	g.L = r + 1
}

// RetireRow removes the oldest live collision row from the graph — the
// symmetric inverse of AppendRow, for the coherence-windowed decode in
// which rows older than the channel's coherence time are model error
// rather than evidence. The row leaves every collider's adjacency list
// and the per-tag |h|²·w constants in O(colliders) (plus an O(live
// rows) activeRows prune when the row was still active), but its index
// is never reused: rows [0, retired) keep their numbers, so L and
// every cached per-row index a Session holds stay stable. Callers
// owning cached descent state must subtract the row's contribution
// first — that is Session.Retire's job.
func (g *Graph) RetireRow() {
	r := g.retired
	if r >= g.L {
		panic("bp: RetireRow with no live rows")
	}
	for _, i := range g.rowCols[r] {
		cr := g.colRows[i]
		// Rows append in ascending order and retire in ascending order,
		// so the oldest live row heads every collider's row list.
		if cr[0] != r {
			panic("bp: adjacency out of order in RetireRow")
		}
		copy(cr, cr[1:])
		g.colRows[i] = cr[:len(cr)-1]
		if r < g.staleCut[i] {
			g.staleCnt[i]--
		}
		if len(cr) == 1 {
			// Snap to exact zero: |h|²·w must vanish with the degree,
			// and the incremental subtractions leave float dust that
			// would poison the margin normalization −G/(|h|²·w).
			g.wPow[i] = 0
		} else if a := g.alphaAt(r, i); a != 1 {
			g.wPow[i] -= g.tapPower[i] * a * a
		} else {
			g.wPow[i] -= g.tapPower[i]
		}
	}
	if len(g.rowActive[r]) > 0 {
		// activeRows is ascending, so a live oldest row can only be
		// its first entry.
		if g.activeRows[0] != r {
			panic("bp: activeRows out of order in RetireRow")
		}
		copy(g.activeRows, g.activeRows[1:])
		g.activeRows = g.activeRows[:len(g.activeRows)-1]
	}
	if c := g.rowCols[r]; cap(c) > 0 {
		g.spare = append(g.spare, c[:0])
	}
	g.rowCols[r] = nil
	if c := g.rowActive[r]; cap(c) > 0 {
		g.spare = append(g.spare, c[:0])
	}
	g.rowActive[r] = nil
	g.retired = r + 1
}

// RetireTagRows removes tag i from every live collision row with index
// below throughRow — the per-tag analogue of RetireRow, for the
// heterogeneous-mobility decode in which only a mover's old rows are
// model error while its stationary neighbors' evidence stays good. The
// rows themselves stay live for their other colliders: only tag i's
// adjacency entries, |h_i|²·w constant and row memberships go, in
// O(rows removed · colliders) plus an O(live rows) activeRows prune
// when a row's last active collider leaves. Rows emptied of active
// tags are reported via TakeNewlyInactive, exactly as DeactivateTag
// reports them. Returns the number of rows the tag was removed from.
//
// Callers owning cached descent state must subtract the tag's
// contribution from those rows first — that is Session.RetireTag's job.
func (g *Graph) RetireTagRows(i, throughRow int) int {
	cr := g.colRows[i]
	n := 0
	for n < len(cr) && cr[n] < throughRow {
		n++
	}
	if n == 0 {
		return 0
	}
	active := !g.deactivated[i]
	emptied := false
	for _, r := range cr[:n] {
		rc := g.rowCols[r]
		for x, j := range rc {
			if j == i {
				copy(rc[x:], rc[x+1:])
				g.rowCols[r] = rc[:len(rc)-1]
				break
			}
		}
		if active {
			ra := g.rowActive[r]
			for x, j := range ra {
				if j == i {
					copy(ra[x:], ra[x+1:])
					g.rowActive[r] = ra[:len(ra)-1]
					break
				}
			}
			if len(g.rowActive[r]) == 0 {
				g.newlyInactive = append(g.newlyInactive, r)
				emptied = true
			}
		}
		if r < g.staleCut[i] {
			g.staleCnt[i]--
		}
	}
	copy(cr, cr[n:])
	g.colRows[i] = cr[:len(cr)-n]
	if len(g.colRows[i]) == 0 {
		// Snap, as in RetireRow: the margin normalization divides by this.
		g.wPow[i] = 0
	} else {
		g.wPow[i] = g.tapPower[i] * g.effWeight(i)
	}
	if emptied {
		keep := g.activeRows[:0]
		for _, row := range g.activeRows {
			if len(g.rowActive[row]) > 0 {
				keep = append(keep, row)
			}
		}
		g.activeRows = keep
	}
	return n
}

// SetSoftCut advances tag i's soft stale boundary to throughRow and
// installs the down-weight alpha for its stale rows — the soft
// alternative to RetireTagRows: the tag keeps participating in its old
// rows, but at α·h_i instead of h_i. The effective |h|²·w constant is
// re-derived; cached descent state must be rebuilt by the owner when
// changed is reported (the weight change touches every stale row of
// the tag). Returns the number of rows that newly became stale and
// whether anything (boundary or live weight) actually changed; a call
// that would only re-stamp an unused alpha is a no-op, leaving the
// graph byte-identical.
func (g *Graph) SetSoftCut(i, throughRow int, alpha float64) (newly int, changed bool) {
	cut := min(throughRow, g.L)
	if cut < g.staleCut[i] {
		cut = g.staleCut[i]
	}
	for _, r := range g.colRows[i] {
		if r >= cut {
			break
		}
		if r >= g.staleCut[i] {
			newly++
		}
	}
	if newly == 0 && (g.staleCnt[i] == 0 || alpha == g.softAlpha[i]) {
		return 0, false
	}
	g.soft = true
	g.staleCut[i] = cut
	g.softAlpha[i] = alpha
	g.staleCnt[i] += newly
	if g.staleCnt[i] > 0 {
		g.anyStale = true
	}
	g.wPow[i] = g.tapPower[i] * g.effWeight(i)
	return newly, true
}

// StaleRows returns the number of tag i's live rows currently under
// soft down-weighting.
func (g *Graph) StaleRows(i int) int { return g.staleCnt[i] }

// popSpare hands back a retired row's adjacency backing, or nil.
func (g *Graph) popSpare() []int {
	n := len(g.spare)
	if n == 0 {
		return nil
	}
	s := g.spare[n-1]
	g.spare[n-1] = nil
	g.spare = g.spare[:n-1]
	return s
}

// adjacencyReserveEntries caps the dense adjacency reservation at 8M
// ints (64 MiB of slab): small enough that a 512 MiB-limited sweep
// never sees the worst-case carve, large enough that every CI-sized
// transfer keeps its zero-alloc warm path.
const adjacencyReserveEntries = 8 << 20

// ReserveRows pre-sizes the per-row header tables for a transfer of at
// most n rows, so a sliding-window steady state (whose row indices
// grow past the live count forever) never reallocates them mid-slot.
// The Session calls it once per Begin with its slot budget.
func (g *Graph) ReserveRows(n int) {
	if cap(g.rowCols) < n {
		next := make([][]int, g.L, scratch.CeilPow2(n))
		copy(next, g.rowCols)
		g.rowCols = next
	}
	if cap(g.rowActive) < n {
		next := make([][]int, g.L, scratch.CeilPow2(n))
		copy(next, g.rowActive)
		g.rowActive = next
	}
}

// ReserveAdjacency pre-carves every row's adjacency lists and every
// tag's row list out of two slabs, so a transfer of at most n rows over
// at most kCap tags appends rows and row memberships without touching
// the heap: AppendRow's and AddTag's recycle-by-index paths find a
// capacity-kCap (resp. capacity-n) region already parked at each index,
// where an unreserved graph builds them by incremental append — several
// small allocations per slot, forever. Regions are cap-limited
// three-index slices, so a row that outgrows its region (K grown past
// kCap mid-transfer) detaches onto a fresh allocation without bleeding
// into a neighbor, and the in-place compactions (RetireRow,
// RetireTagRows, DeactivateTag) stay inside their region by
// construction. Carving rebinds every index, so the call is only legal
// on an empty graph (a fresh Reset); on a live one it is a no-op.
func (g *Graph) ReserveAdjacency(kCap, n int) {
	if kCap < 1 || n < 1 || g.L != 0 || g.retired != 0 {
		return
	}
	// The dense carve sizes for the worst case — every tag in every row
	// — which is 3·n·kCap ints. A warehouse-scale transfer (tens of
	// thousands of tags over tens of thousands of slots) would turn that
	// into gigabytes for adjacency that stays ~99% empty: past the
	// budget the graph builds its lists incrementally instead, trading
	// a few small allocations per slot for bounded memory. Decode output
	// is unaffected either way — reservation is a pure allocator hint.
	if 3*n*kCap > adjacencyReserveEntries {
		g.ReserveRows(n)
		return
	}
	g.ReserveRows(n)
	adjN := 2 * n * kCap
	if cap(g.adjSlab) < adjN {
		g.adjSlab = make([]int, adjN)
	}
	adj := g.adjSlab[:adjN]
	rc := g.rowCols[:n]
	ra := g.rowActive[:n]
	for r := 0; r < n; r++ {
		rc[r] = adj[(2*r)*kCap : (2*r)*kCap : (2*r+1)*kCap]
		ra[r] = adj[(2*r+1)*kCap : (2*r+1)*kCap : (2*r+2)*kCap]
	}
	g.rowCols = rc[:0]
	g.rowActive = ra[:0]
	// Row indices never reach n (AppendSlot enforces the budget), so
	// every append finds its carved region in place and the spare pool
	// is dead weight from here on.
	g.spare = g.spare[:0]
	colN := kCap * n
	if cap(g.colSlab) < colN {
		g.colSlab = make([]int, colN)
	}
	col := g.colSlab[:colN]
	g.colRows = reserveCap(g.colRows, kCap)
	cs := g.colRows[:kCap]
	for i := 0; i < kCap; i++ {
		cs[i] = col[i*n : i*n : (i+1)*n]
	}
	g.colRows = cs[:g.K]
	g.activeRows = reserveCap(g.activeRows, n)[:len(g.activeRows)]
	g.newlyInactive = reserveCap(g.newlyInactive, n)[:len(g.newlyInactive)]
}

// Retired returns the number of retired prefix rows; the live graph is
// the window [Retired(), L).
func (g *Graph) Retired() int { return g.retired }

// DeactivateTag drops tag i from every row's flip fan-out: callers do
// this when the outer loop CRC-locks the tag, whose sums and gains are
// dead state from then on. Rows left with no active tags are pruned
// from activeRows and reported via TakeNewlyInactive.
// O(w_i · colliders), once per locked tag.
func (g *Graph) DeactivateTag(i int) {
	if g.deactivated[i] {
		return
	}
	g.deactivated[i] = true
	emptied := false
	for _, row := range g.colRows[i] {
		ra := g.rowActive[row]
		for x, j := range ra {
			if j == i {
				g.rowActive[row] = append(ra[:x], ra[x+1:]...)
				break
			}
		}
		if len(g.rowActive[row]) == 0 {
			g.newlyInactive = append(g.newlyInactive, row)
			emptied = true
		}
	}
	if emptied {
		// Compact activeRows in place, preserving ascending order.
		keep := g.activeRows[:0]
		for _, row := range g.activeRows {
			if len(g.rowActive[row]) > 0 {
				keep = append(keep, row)
			}
		}
		g.activeRows = keep
	}
}

// TakeNewlyInactive returns the rows emptied since the last call and
// resets the accumulator. The Session folds their frozen residual
// energy into its per-position error constant.
func (g *Graph) TakeNewlyInactive() []int {
	rows := g.newlyInactive
	g.newlyInactive = g.newlyInactive[:0]
	return rows
}

// SnapshotActive packs the active adjacency into the flat CSR the
// restart builder streams. The Session calls it once per slot, after
// the graph grew and locks folded in; it is O(active nnz).
func (g *Graph) SnapshotActive() {
	g.flatStart = g.flatStart[:0]
	g.flatTags = g.flatTags[:0]
	for _, row := range g.activeRows {
		g.flatStart = append(g.flatStart, len(g.flatTags))
		g.flatTags = append(g.flatTags, g.rowActive[row]...)
	}
	g.flatStart = append(g.flatStart, len(g.flatTags))
}

// Rebuild re-derives the graph from d and taps in place, reusing the
// adjacency storage of earlier builds; a steady-state rebuild (same
// dimensions as a previous one) allocates nothing. Callers that grow D
// one row per slot should prefer Reset + AppendRow, which skips the
// full matrix scan.
func (g *Graph) Rebuild(d *bits.Matrix, taps []complex128) {
	if d.Cols != len(taps) {
		panic(fmt.Sprintf("bp: D has %d columns but %d taps supplied", d.Cols, len(taps)))
	}
	g.Reset(d.Cols, taps)
	for r := 0; r < d.Rows; r++ {
		g.AppendRow(d.RowView(r))
	}
}

// Degree returns the participation count of tag i.
func (g *Graph) Degree(i int) int { return len(g.colRows[i]) }

// RowTags returns the tags participating in collision row r. The slice
// aliases the graph's storage; callers must not modify it.
func (g *Graph) RowTags(r int) []int { return g.rowCols[r] }

// residualInto computes r = y − D·H·b into dst (length L) and returns
// dst — the one definition of the residual model shared by the descent,
// the margin computation and the error evaluation.
func (g *Graph) residualInto(dst dsp.Vec, y dsp.Vec, b bits.Vector) dsp.Vec {
	copy(dst, y)
	if g.soft {
		for i, on := range b {
			if on {
				h := g.taps[i]
				cut, a := g.staleCut[i], complex(g.softAlpha[i], 0)
				for _, row := range g.colRows[i] {
					if row < cut {
						dst[row] -= a * h
					} else {
						dst[row] -= h
					}
				}
			}
		}
		return dst
	}
	for i, on := range b {
		if on {
			h := g.taps[i]
			for _, row := range g.colRows[i] {
				dst[row] -= h
			}
		}
	}
	return dst
}

// Options tunes a decode.
type Options struct {
	// Init seeds the search. Nil means a uniform random start (the
	// paper's initialization); the outer rateless loop passes the
	// previous slot-count's estimate so added collisions refine rather
	// than restart.
	Init bits.Vector
	// Locked marks tags whose bit values are frozen (CRC-verified).
	// Locked tags keep their Init value and are never flipped; Init must
	// be non-nil wherever Locked is true.
	Locked []bool
	// Restarts runs the search from this many additional random
	// initializations and keeps the lowest-error result. Zero means a
	// single pass.
	Restarts int
	// GainEps is the minimum gain worth flipping for; it guards against
	// floating-point limit cycles. Default 1e-12.
	GainEps float64
	// Scratch, when non-nil, supplies every working buffer of the decode
	// — candidate vectors, residuals, gains — from a per-worker arena
	// instead of the heap. The numerics are identical either way. With a
	// Scratch set, Result.Bits and Result.Ambiguous are arena-backed:
	// they remain valid only until the caller's next Release or Reset of
	// the arena, so callers bracket Decode with Mark/Release and copy out
	// anything they keep.
	Scratch *scratch.Scratch
}

// Result reports a decode outcome.
type Result struct {
	// Bits is the best b̂ found.
	Bits bits.Vector
	// Error is ‖D·H·b̂ − y‖² at Bits.
	Error float64
	// Flips counts bit flips performed across all restarts.
	Flips int
	// Ambiguous flags tags whose bit differs between the best solution
	// and another restart's solution of nearly equal error. This is the
	// decoder's defense against signed near-zero subset sums of taps
	// (Σ ±h_i ≈ 0): a coordinated multi-bit flip over such a subset is
	// invisible to the observations, defeats single-flip margins, and
	// cannot be traversed by greedy conditional re-optimization — but
	// independent random restarts land in both basins and expose the
	// tie. "Nearly equal" means the error gap is below half the tag's
	// own collision energy |h_i|²: the gap an honest single-bit error
	// would create.
	Ambiguous []bool
}

// descentState is the incremental working set of one bit-flipping search:
// the residual, the per-tag residual row-sums S_i, the gain table derived
// from them, and the tournament tree that serves argmax queries. Session
// persists one of these per bit position across collision slots; the
// standalone Decode builds them in scratch per pass.
type descentState struct {
	// residual is r = y − D·H·b for the state's current bits.
	residual dsp.Vec
	// sum[i] is S_i = Σ_{rows ∋ i} residual[row].
	sum []complex128
	// gain[i] is G_i (−∞ for locked tags).
	gain []float64
	// bSign[i] is −1 when b[i] is set, +1 otherwise — the flip
	// direction δ as a multiplicand, so the gain kernel needs no
	// data-dependent branch (random candidate bits made the old
	// `if bit { corr = −corr }` a steady branch-mispredict).
	bSign []float64
	// maskTap[i] is taps[i] where b[i] is set and unlocked, 0
	// elsewhere — the restart builder's branchless row kernel
	// (subtracting complex(0,0) is exact).
	maskTap []complex128
	// tree is a tournament tree over gain: tree[1] is the root, leaves
	// start at leafBase, node values are tag indices (−1 = empty).
	tree     []int
	leafBase int
	// dirty and inDirty are the flip loop's dirty-list: a flip touches
	// each neighbor once per shared row, but its gain and tree path are
	// repaired once per unique neighbor after the sums settle.
	dirty   []int
	inDirty []bool
	// useTree selects the argmax structure: the tournament tree pays
	// off past treeCutoverK tags; below it a contiguous scan of the
	// gain table beats the tree's pointer-chasing constants. Both
	// implement the same (gain desc, index asc) total order, so the
	// flip sequence is identical either way.
	useTree bool
}

// treeCutoverK is the tag count above which descents query the
// tournament tree instead of scanning the gain table. At the paper's
// K ≤ 16 the scan is 16 contiguous float compares — cheaper than any
// tree walk — while the tree keeps per-flip selection O(touched·log K)
// when a deployment scales K into the hundreds.
const treeCutoverK = 64

// alloc sizes the state's buffers for k tags and l symbols from sc.
func (st *descentState) alloc(k, l int, sc *scratch.Scratch) {
	st.residual = dsp.Vec(sc.Complex(l))
	st.sum = sc.Complex(k)
	st.gain = sc.Float(k)
	st.bSign = sc.Float(k)
	st.maskTap = sc.Complex(k)
	st.allocTree(k, sc.Int(2*scratch.CeilPow2(max(k, 1))))
	st.allocDirty(sc.Int(k), sc.Bool(k))
}

// allocTree installs the tournament-tree backing (length must be
// 2·CeilPow2(k)) and records the leaf offset.
func (st *descentState) allocTree(k int, buf []int) {
	st.tree = buf
	st.leafBase = len(buf) / 2
	st.useTree = k > treeCutoverK
}

// allocDirty installs the dirty-list backing (length k each; inDirty
// must be all-false).
func (st *descentState) allocDirty(dirty []int, inDirty []bool) {
	st.dirty = dirty
	st.inDirty = inDirty
}

// gainOf computes tag i's gain from the cached S_i — the hoisted-conj
// correlation kernel of the package comment, with the |h|²·w constant
// served from the graph's wPow cache and the flip direction from the
// state's sign table (branch-free on the candidate bit).
func (st *descentState) gainOf(g *Graph, i int) float64 {
	s := st.sum[i]
	corr := g.tapRe[i]*real(s) + g.tapIm[i]*imag(s)
	return 2*corr*st.bSign[i] - g.wPow[i]
}

// better reports whether candidate tag a beats b under the search's
// total order: higher gain first, ties broken toward the lower index —
// exactly the order the original first-strictly-greater scan produced.
func (st *descentState) better(a, b int) bool {
	if b < 0 {
		return true
	}
	if a < 0 {
		return false
	}
	ga, gb := st.gain[a], st.gain[b]
	if ga != gb {
		return ga > gb
	}
	return a < b
}

// treeFix re-plays the tournament on the path from leaf i to the root
// after gain[i] changed. The walk cannot stop early even when a node's
// winning index is unchanged: the winner's key (its gain) changed, so
// every ancestor's comparison must be re-evaluated.
func (st *descentState) treeFix(i int) {
	n := st.leafBase + i
	for n > 1 {
		p := n >> 1
		l, r := st.tree[2*p], st.tree[2*p+1]
		win := l
		if st.better(r, l) {
			win = r
		}
		st.tree[p] = win
		n = p
	}
}

// treeBuild populates the whole tree from the gain table.
func (st *descentState) treeBuild(k int) {
	for i := 0; i < st.leafBase; i++ {
		if i < k {
			st.tree[st.leafBase+i] = i
		} else {
			st.tree[st.leafBase+i] = -1
		}
	}
	for p := st.leafBase - 1; p >= 1; p-- {
		l, r := st.tree[2*p], st.tree[2*p+1]
		win := l
		if st.better(r, l) {
			win = r
		}
		st.tree[p] = win
	}
}

// build derives the full state — residual, S-sums, gains, tree — for
// candidate b against observation y. O(L + nnz + K).
func (st *descentState) build(g *Graph, y dsp.Vec, b bits.Vector, locked []bool) {
	g.residualInto(st.residual, y, b)
	st.rederive(g, b, locked)
}

// buildFromBase derives residual, S-sums, gains and tree for candidate
// b in ONE row-major sweep, starting from a base residual that already
// carries the locked tags' contributions (the Session's locked-base).
// Only the active (unlocked) adjacency is traversed, once: each row's
// residual entry is finished and immediately scattered into the S-sums
// of the row's active tags. This is the restart passes' builder — the
// column-major build + rederive pair costs two traversals and O(K·w̄)
// pointer chasing; this costs one.
//
// Callers must guarantee that the graph's deactivated set equals the
// locked set (the Session maintains exactly that invariant).
// Only the graph's active rows are visited: rows whose every collider
// is locked keep whatever the residual buffer holds (the caller
// accounts for their frozen energy separately — see normSqActive).
func (st *descentState) buildFromBase(g *Graph, base []complex128, b bits.Vector, locked []bool) {
	for i := 0; i < g.K; i++ {
		if b[i] {
			st.bSign[i] = -1
			st.maskTap[i] = g.taps[i]
		} else {
			st.bSign[i] = 1
			st.maskTap[i] = 0
		}
		if locked != nil && locked[i] {
			st.gain[i] = math.Inf(-1)
			st.maskTap[i] = 0 // locked contributions already live in base
		} else {
			st.sum[i] = 0
		}
	}
	if g.soft {
		// Weighted form: a stale row sees α_i·h_i of tag i and feeds
		// α_i·r into the tag's S-sum. The extra compare per entry is
		// paid only in soft mode; the classic path below stays
		// branch-free.
		for x, row := range g.activeRows {
			r := base[row]
			ra := g.flatTags[g.flatStart[x]:g.flatStart[x+1]]
			for _, i := range ra {
				if row < g.staleCut[i] {
					r -= complex(g.softAlpha[i], 0) * st.maskTap[i]
				} else {
					r -= st.maskTap[i]
				}
			}
			st.residual[row] = r
			for _, i := range ra {
				if row < g.staleCut[i] {
					st.sum[i] += complex(g.softAlpha[i], 0) * r
				} else {
					st.sum[i] += r
				}
			}
		}
	} else {
		for x, row := range g.activeRows {
			r := base[row]
			ra := g.flatTags[g.flatStart[x]:g.flatStart[x+1]]
			// Branch-free: subtracting a zero masked tap is an exact
			// no-op, and the candidate bits are random — a conditional
			// here mispredicts half the time.
			for _, i := range ra {
				r -= st.maskTap[i]
			}
			st.residual[row] = r
			for _, i := range ra {
				st.sum[i] += r
			}
		}
	}
	for i := 0; i < g.K; i++ {
		if locked == nil || !locked[i] {
			st.gain[i] = st.gainOf(g, i)
		}
	}
	if st.useTree {
		st.treeBuild(g.K)
	}
}

// normSqActive returns the squared norm of the residual restricted to
// the graph's active rows; adding the Session's frozen-row constant
// yields the full ‖r‖².
func (st *descentState) normSqActive(g *Graph) float64 {
	var s float64
	for _, row := range g.activeRows {
		x := st.residual[row]
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return s
}

// copyActiveFrom copies src's state into st, restricting the residual
// transfer to the graph's active rows (the only entries src's builder
// materialized; st's frozen entries stay valid).
func (st *descentState) copyActiveFrom(g *Graph, src *descentState) {
	st.residual = st.residual[:len(src.residual)]
	for _, row := range g.activeRows {
		st.residual[row] = src.residual[row]
	}
	copy(st.sum, src.sum)
	copy(st.gain, src.gain)
	copy(st.bSign, src.bSign)
	if src.useTree {
		copy(st.tree, src.tree)
	}
	st.leafBase = src.leafBase
	st.useTree = src.useTree
}

// rederive recomputes S-sums, gains and the tree from the state's
// current residual and the candidate bits — the taps-changed and
// copied-state entry points.
func (st *descentState) rederive(g *Graph, b bits.Vector, locked []bool) {
	for i := 0; i < g.K; i++ {
		if b[i] {
			st.bSign[i] = -1
		} else {
			st.bSign[i] = 1
		}
		if locked != nil && locked[i] {
			// A locked tag's sum is dead state: its gain is pinned at
			// −∞ and nothing ever reads S_i again.
			st.gain[i] = math.Inf(-1)
			continue
		}
		var s complex128
		if g.soft && g.staleCnt[i] > 0 {
			cut, a := g.staleCut[i], complex(g.softAlpha[i], 0)
			for _, row := range g.colRows[i] {
				if row < cut {
					s += a * st.residual[row]
				} else {
					s += st.residual[row]
				}
			}
		} else {
			for _, row := range g.colRows[i] {
				s += st.residual[row]
			}
		}
		st.sum[i] = s
		st.gain[i] = st.gainOf(g, i)
	}
	if st.useTree {
		st.treeBuild(g.K)
	}
}

// appendRow folds collision row `row` into the state in O(colliders):
// the new residual entry, the touched S-sums and gains. obs is the new
// symbol's observation. Rows must be appended in order.
func (st *descentState) appendRow(g *Graph, row int, obs complex128, b bits.Vector, locked []bool) {
	r := obs
	tags := g.rowCols[row]
	for _, i := range tags {
		if b[i] {
			r -= g.taps[i]
		}
	}
	st.residual = append(st.residual, r)
	for _, i := range g.rowActive[row] {
		if locked != nil && locked[i] {
			st.gain[i] = math.Inf(-1)
		} else {
			st.sum[i] += r
			st.gain[i] = st.gainOf(g, i)
		}
		if st.useTree {
			st.treeFix(i)
		}
	}
}

// applyFlip flips bit i in b and updates residual, S-sums and the gains
// of every touched tag: O(w_i · colliders) sum updates (one complex
// subtraction each — every touched residual entry moves by the same
// −δ·h_i), then one gain recompute and tree repair per unique neighbor
// via the dirty-list.
func (st *descentState) applyFlip(g *Graph, b bits.Vector, locked []bool, i int) {
	delta := g.taps[i]
	if b[i] {
		delta = -delta
	}
	b[i] = !b[i]
	st.bSign[i] = -st.bSign[i]
	nd := 0
	if g.soft {
		cut := g.staleCut[i]
		for _, row := range g.colRows[i] {
			d := delta
			if row < cut {
				d *= complex(g.softAlpha[i], 0)
			}
			st.residual[row] -= d
			for _, j := range g.rowActive[row] {
				if row < g.staleCut[j] {
					st.sum[j] -= complex(g.softAlpha[j], 0) * d
				} else {
					st.sum[j] -= d
				}
				if !st.inDirty[j] {
					st.inDirty[j] = true
					st.dirty[nd] = j
					nd++
				}
			}
		}
	} else {
		for _, row := range g.colRows[i] {
			st.residual[row] -= delta
			for _, j := range g.rowActive[row] {
				st.sum[j] -= delta
				if !st.inDirty[j] {
					st.inDirty[j] = true
					st.dirty[nd] = j
					nd++
				}
			}
		}
	}
	for _, j := range st.dirty[:nd] {
		st.inDirty[j] = false
		if locked != nil && locked[j] {
			continue
		}
		st.gain[j] = st.gainOf(g, j)
	}
	if !st.useTree {
		return
	}
	// Tree repair: per-leaf paths cost ~log K comparisons each, a full
	// rebuild K−1 — pick whichever is cheaper for this flip's fan-out.
	if nd*treeDepth(st.leafBase) >= st.leafBase {
		st.treeBuild(len(st.gain))
	} else {
		for _, j := range st.dirty[:nd] {
			st.treeFix(j)
		}
	}
}

// treeDepth returns the leaf-to-root path length of a tournament tree
// with the given leaf count (a power of two).
func treeDepth(leaves int) int {
	d := 0
	for n := leaves; n > 1; n >>= 1 {
		d++
	}
	return d
}

// lockTag freezes tag i in the state: its gain drops to −∞ so the
// descent can never select it. The Session applies this between slots
// when the outer loop verifies a message.
func (st *descentState) lockTag(i int) {
	st.gain[i] = math.Inf(-1)
	if st.useTree {
		st.treeFix(i)
	}
}

// descend runs the greedy flip loop to a local optimum, mutating b and
// the state in place; it returns the flip count. The state must be
// consistent with b on entry and remains so on exit.
func (st *descentState) descend(g *Graph, b bits.Vector, locked []bool, eps float64) int {
	flips := 0
	// Each accepted flip strictly reduces the squared error by at least
	// eps, and the error is bounded below by 0, so this terminates. The
	// hard cap is a belt-and-braces guard against pathological float
	// behaviour.
	maxFlips := 64 * (g.K + 1) * (g.L + 1)
	for flips < maxFlips {
		var best int
		if st.useTree {
			best = st.tree[1]
			if best < 0 || st.gain[best] <= eps {
				break
			}
		} else {
			// Contiguous scan with the same (gain desc, index asc)
			// order the tree serves — optimal below the cutover.
			best = -1
			bestG := eps
			for i, gv := range st.gain {
				if gv > bestG {
					bestG = gv
					best = i
				}
			}
			if best < 0 {
				break
			}
		}
		st.applyFlip(g, b, locked, best)
		flips++
	}
	return flips
}

// Decode runs the bit-flipping search for one bit position. y must hold
// exactly L symbols. src drives the random initializations.
func (g *Graph) Decode(y dsp.Vec, opts Options, src *prng.Source) Result {
	if len(y) != g.L {
		panic(fmt.Sprintf("bp: observation length %d != L %d", len(y), g.L))
	}
	if opts.Locked != nil && len(opts.Locked) != g.K {
		panic(fmt.Sprintf("bp: Locked length %d != K %d", len(opts.Locked), g.K))
	}
	if opts.Init != nil && len(opts.Init) != g.K {
		panic(fmt.Sprintf("bp: Init length %d != K %d", len(opts.Init), g.K))
	}
	eps := opts.GainEps
	if eps == 0 {
		eps = 1e-12
	}
	sc := opts.Scratch

	// One contiguous block holds every pass's candidate so the
	// tie-detection sweep below can revisit all of them without keeping a
	// slice of Results around.
	passes := 1 + opts.Restarts
	allBits := sc.Bool(passes * g.K)
	passErr := sc.Float(passes)
	var st descentState
	stMark := sc.Mark()
	st.alloc(g.K, g.L, sc)
	totalFlips := 0
	bestPass := 0
	bestErr := math.Inf(1)
	for pass := 0; pass < passes; pass++ {
		bhat := bits.Vector(allBits[pass*g.K : (pass+1)*g.K])
		switch {
		case pass == 0 && opts.Init != nil:
			copy(bhat, opts.Init)
		default:
			bits.RandomInto(src, bhat)
			// Random restarts must still respect locks.
			if opts.Locked != nil && opts.Init != nil {
				for i, l := range opts.Locked {
					if l {
						bhat[i] = opts.Init[i]
					}
				}
			}
		}
		st.build(g, y, bhat, opts.Locked)
		totalFlips += st.descend(g, bhat, opts.Locked, eps)
		errV := st.residual.NormSq()
		passErr[pass] = errV
		if errV < bestErr {
			bestErr = errV
			bestPass = pass
		}
	}
	sc.Release(stMark)
	best := Result{
		Bits:      bits.Vector(allBits[bestPass*g.K : (bestPass+1)*g.K]),
		Error:     bestErr,
		Flips:     totalFlips,
		Ambiguous: sc.Bool(g.K),
	}
	// Tie detection: any alternative local optimum whose error is within
	// a tag's own collision energy of the best, yet disagrees on that
	// tag's bit, marks the tag ambiguous.
	markAmbiguous(g, allBits, passErr, bestPass, best.Bits, best.Ambiguous)
	return best
}

// markAmbiguous runs the cross-pass tie sweep of Result.Ambiguous over
// the contiguous per-pass candidate block.
func markAmbiguous(g *Graph, allBits []bool, passErr []float64, bestPass int, bestBits bits.Vector, out []bool) {
	g.markAmbiguousPruned(allBits, passErr, bestPass, bestBits, out, g.maxTieThreshold())
}

// maxTieThreshold returns the largest per-tag tie threshold of the
// current graph — the prune bound for the ambiguity sweep. The Session
// hoists it to once per slot.
func (g *Graph) maxTieThreshold() float64 {
	maxThresh := 0.0
	for i := 0; i < g.K; i++ {
		if t := 0.15 * g.wPow[i]; t > maxThresh {
			maxThresh = t
		}
	}
	return maxThresh
}

// markAmbiguousPruned is markAmbiguous with the prune bound supplied: a
// pass whose error gap exceeds every tag's tie threshold cannot mark
// anything, so its bit sweep is skipped entirely (most restarts end far
// from the optimum, leaving only the interesting few), as is the best
// pass itself (its bits are bestBits — nothing can differ).
func (g *Graph) markAmbiguousPruned(allBits []bool, passErr []float64, bestPass int, bestBits bits.Vector, out []bool, maxThresh float64) {
	bestErr := passErr[bestPass]
	for pass := 0; pass < len(passErr); pass++ {
		if pass == bestPass {
			continue
		}
		gap := passErr[pass] - bestErr
		if gap >= maxThresh {
			continue
		}
		alt := allBits[pass*g.K : (pass+1)*g.K]
		for i := 0; i < g.K; i++ {
			if alt[i] != bool(bestBits[i]) && gap < 0.15*g.wPow[i] {
				out[i] = true
			}
		}
	}
}

// Margins returns, for each tag, the normalized flip margin of candidate
// b against observation y:
//
//	m_i = −G_i / (|h_i|²·w_i)
//
// where G_i is the flip gain (≤ 0 at a local optimum) and w_i tag i's
// participation count. A confidently decoded bit has m_i ≈ 1 — flipping
// it would add its full collision energy back as error — while a bit the
// observations barely constrain has m_i ≈ 0. Tags with w_i = 0 report 0:
// nothing has been observed about them at all.
//
// The rateless outer loop uses these margins as a CRC gate: a 5-bit
// checksum false-accepts 1 in 32 random frames, so the reader only
// checks frames whose every bit is strongly pinned (see
// ratedapt.Config.MarginThreshold).
func (g *Graph) Margins(y dsp.Vec, b bits.Vector) []float64 {
	return g.MarginsInto(make([]float64, g.K), y, b, nil)
}

// MarginsInto is Margins computed into out (which must have length K),
// with the residual drawn from sc; the allocation-free form callers on
// the hot path use. A nil sc falls back to plain allocation.
func (g *Graph) MarginsInto(out []float64, y dsp.Vec, b bits.Vector, sc *scratch.Scratch) []float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: Margins dimension mismatch")
	}
	if len(out) != g.K {
		panic(fmt.Sprintf("bp: MarginsInto out length %d != K %d", len(out), g.K))
	}
	mark := sc.Mark()
	residual := g.residualInto(dsp.Vec(sc.Complex(len(y))), y, b)
	for i := 0; i < g.K; i++ {
		out[i] = 0
		w := len(g.colRows[i])
		if w == 0 || g.tapPower[i] == 0 {
			continue
		}
		var s complex128
		den := g.tapPower[i] * float64(w)
		if g.soft && g.staleCnt[i] > 0 {
			// Weighted correlation and effective |h|²·w under soft
			// stale-row down-weighting — the same model the descent ran.
			cut, a := g.staleCut[i], complex(g.softAlpha[i], 0)
			for _, row := range g.colRows[i] {
				if row < cut {
					s += a * residual[row]
				} else {
					s += residual[row]
				}
			}
			den = g.tapPower[i] * g.effWeight(i)
			if den == 0 {
				continue
			}
		} else {
			for _, row := range g.colRows[i] {
				s += residual[row]
			}
		}
		corr := g.tapRe[i]*real(s) + g.tapIm[i]*imag(s)
		if b[i] {
			corr = -corr
		}
		gain := 2*corr - den
		out[i] = -gain / den
	}
	sc.Release(mark)
	return out
}

// marginOf converts a gain into the normalized flip margin; shared by
// MarginsInto's formula and the Session's cached-gain fast path.
func (g *Graph) marginOf(i int, gain float64) float64 {
	if g.wPow[i] == 0 {
		return 0
	}
	return -gain / g.wPow[i]
}

// ConditionalMargin measures how much worse the observations can be
// explained with tag i's bit forced to the opposite value: it flips bit
// i in candidate b, pins it, lets every other unlocked bit re-optimize,
// and returns
//
//	(err(best with bit i flipped) − err(b)) / (|h_i|²·w_i)
//
// The plain flip margin (Margins) only scores single-bit flips, so it is
// blind to constellation near-coincidences in which several tags' bits
// change together — the dominant false-decode mode when many tags
// collide in few slots. A conditional margin near zero says the flipped
// world explains the data almost as well: the bit is ambiguous no matter
// how confident the single-flip margin looks. Tags with no observations
// report 0.
func (g *Graph) ConditionalMargin(y dsp.Vec, b bits.Vector, i int, locked []bool, src *prng.Source) float64 {
	return g.ConditionalMarginScratch(y, b, i, locked, src, nil)
}

// ConditionalMarginScratch is ConditionalMargin with the working buffers
// — the flipped candidate, the pin mask, and the inner re-decode — drawn
// from sc. Nothing escapes: the arena is released before returning.
// Callers holding a Session should prefer Session.ConditionalMargin,
// which reuses the position's cached residual and error instead of
// rebuilding both.
func (g *Graph) ConditionalMarginScratch(y dsp.Vec, b bits.Vector, i int, locked []bool, src *prng.Source, sc *scratch.Scratch) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ConditionalMargin dimension mismatch")
	}
	w := len(g.colRows[i])
	den := g.tapPower[i] * float64(w)
	if g.soft {
		den = g.tapPower[i] * g.effWeight(i)
	}
	if w == 0 || den == 0 {
		return 0
	}
	mark := sc.Mark()
	defer sc.Release(mark)
	base := g.errorOf(y, b, sc)
	init := bits.Vector(sc.Bool(g.K))
	copy(init, b)
	init[i] = !init[i]
	pin := sc.Bool(g.K)
	if locked != nil {
		copy(pin, locked)
	}
	pin[i] = true
	res := g.Decode(y, Options{Init: init, Locked: pin, Scratch: sc}, src)
	return (res.Error - base) / den
}

// ErrorOf computes ‖D·H·b − y‖² for an arbitrary candidate without
// running a decode; tests and diagnostics use it.
func (g *Graph) ErrorOf(y dsp.Vec, b bits.Vector) float64 {
	return g.errorOf(y, b, nil)
}

func (g *Graph) errorOf(y dsp.Vec, b bits.Vector, sc *scratch.Scratch) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ErrorOf dimension mismatch")
	}
	mark := sc.Mark()
	errV := g.residualInto(dsp.Vec(sc.Complex(len(y))), y, b).NormSq()
	sc.Release(mark)
	return errV
}
