// Package bp implements Buzz's belief-propagation decoder (§6c, Alg. 1):
// a gain-driven bit-flipping search over the bipartite graph whose left
// vertices are the K tags' bits at one message position and whose right
// vertices are the L received collision symbols.
//
// Given the observation y = D·H·b + n, the decoder seeks the binary
// vector b̂ minimizing ‖D·H·b̂ − y‖². It maintains, for every bit i, the
// gain G_i — the reduction in squared error from flipping bit i — and
// repeatedly flips the highest-gain bit until no flip helps. Because D is
// sparse, a flip only perturbs the symbols tag i participates in, so only
// the gains of tags sharing a symbol with i ("neighbors of neighbors" in
// the paper's graph) need updating.
//
// The incremental identity doing the work: with residual r = y − D·H·b̂,
// flipping bit i changes b̂_i by δ ∈ {+1, −1} and
//
//	G_i = ‖r‖² − ‖r − δ·h_i·d_i‖² = 2δ·Re⟨h_i·d_i, r⟩ − |h_i|²·w_i
//
// where d_i is column i of D and w_i its weight. Each gain refresh is
// O(w_i) — no norms are ever recomputed from scratch.
//
// CRC-gated freezing (§6d): once a tag's message passes its checksum in
// the outer loop, the caller locks that tag. Locked bits get gain −∞ so
// later flips can never undo a verified message — the paper's
// "set their gains to be negative infinite" interference-cancellation
// trick.
package bp

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/prng"
)

// Graph is the decoding graph for one block of collisions: the sparse
// participation structure D plus the tags' channel taps.
type Graph struct {
	// K is the number of tags (left vertices).
	K int
	// L is the number of collision symbols (right vertices).
	L int
	// colRows[i] lists the symbols tag i participates in.
	colRows [][]int
	// rowCols[j] lists the tags participating in symbol j.
	rowCols [][]int
	// taps[i] is tag i's channel coefficient h_i.
	taps []complex128
	// tapPower[i] caches |h_i|².
	tapPower []float64
}

// NewGraph builds the decoding graph from the participation matrix D
// (rows = slots, cols = tags) and the channel taps. It panics on a
// tap/column count mismatch: decoding with misaligned channels would
// produce silent garbage.
func NewGraph(d *bits.Matrix, taps []complex128) *Graph {
	if d.Cols != len(taps) {
		panic(fmt.Sprintf("bp: D has %d columns but %d taps supplied", d.Cols, len(taps)))
	}
	g := &Graph{
		K:        d.Cols,
		L:        d.Rows,
		colRows:  make([][]int, d.Cols),
		rowCols:  make([][]int, d.Rows),
		taps:     make([]complex128, len(taps)),
		tapPower: make([]float64, len(taps)),
	}
	copy(g.taps, taps)
	for i, h := range taps {
		g.tapPower[i] = real(h)*real(h) + imag(h)*imag(h)
	}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.At(r, c) {
				g.colRows[c] = append(g.colRows[c], r)
				g.rowCols[r] = append(g.rowCols[r], c)
			}
		}
	}
	return g
}

// Degree returns the participation count of tag i.
func (g *Graph) Degree(i int) int { return len(g.colRows[i]) }

// Options tunes a decode.
type Options struct {
	// Init seeds the search. Nil means a uniform random start (the
	// paper's initialization); the outer rateless loop passes the
	// previous slot-count's estimate so added collisions refine rather
	// than restart.
	Init bits.Vector
	// Locked marks tags whose bit values are frozen (CRC-verified).
	// Locked tags keep their Init value and are never flipped; Init must
	// be non-nil wherever Locked is true.
	Locked []bool
	// Restarts runs the search from this many additional random
	// initializations and keeps the lowest-error result. Zero means a
	// single pass.
	Restarts int
	// GainEps is the minimum gain worth flipping for; it guards against
	// floating-point limit cycles. Default 1e-12.
	GainEps float64
}

// Result reports a decode outcome.
type Result struct {
	// Bits is the best b̂ found.
	Bits bits.Vector
	// Error is ‖D·H·b̂ − y‖² at Bits.
	Error float64
	// Flips counts bit flips performed across all restarts.
	Flips int
	// Ambiguous flags tags whose bit differs between the best solution
	// and another restart's solution of nearly equal error. This is the
	// decoder's defense against signed near-zero subset sums of taps
	// (Σ ±h_i ≈ 0): a coordinated multi-bit flip over such a subset is
	// invisible to the observations, defeats single-flip margins, and
	// cannot be traversed by greedy conditional re-optimization — but
	// independent random restarts land in both basins and expose the
	// tie. "Nearly equal" means the error gap is below half the tag's
	// own collision energy |h_i|²: the gap an honest single-bit error
	// would create.
	Ambiguous []bool
}

// Decode runs the bit-flipping search for one bit position. y must hold
// exactly L symbols. src drives the random initializations.
func (g *Graph) Decode(y dsp.Vec, opts Options, src *prng.Source) Result {
	if len(y) != g.L {
		panic(fmt.Sprintf("bp: observation length %d != L %d", len(y), g.L))
	}
	if opts.Locked != nil && len(opts.Locked) != g.K {
		panic(fmt.Sprintf("bp: Locked length %d != K %d", len(opts.Locked), g.K))
	}
	if opts.Init != nil && len(opts.Init) != g.K {
		panic(fmt.Sprintf("bp: Init length %d != K %d", len(opts.Init), g.K))
	}
	eps := opts.GainEps
	if eps == 0 {
		eps = 1e-12
	}

	best := Result{Error: math.Inf(1)}
	passes := 1 + opts.Restarts
	solutions := make([]Result, 0, passes)
	for pass := 0; pass < passes; pass++ {
		var init bits.Vector
		switch {
		case pass == 0 && opts.Init != nil:
			init = opts.Init.Clone()
		default:
			init = bits.Random(src, g.K)
			// Random restarts must still respect locks.
			if opts.Locked != nil && opts.Init != nil {
				for i, l := range opts.Locked {
					if l {
						init[i] = opts.Init[i]
					}
				}
			}
		}
		r := g.descend(y, init, opts.Locked, eps)
		solutions = append(solutions, r)
		r.Flips += best.Flips
		if r.Error < best.Error {
			best = Result{Bits: r.Bits, Error: r.Error, Flips: r.Flips}
		} else {
			best.Flips = r.Flips
		}
	}
	// Tie detection: any alternative local optimum whose error is within
	// a tag's own collision energy of the best, yet disagrees on that
	// tag's bit, marks the tag ambiguous.
	best.Ambiguous = make([]bool, g.K)
	for _, alt := range solutions {
		gap := alt.Error - best.Error
		for i := 0; i < g.K; i++ {
			if alt.Bits[i] != best.Bits[i] && gap < 0.15*g.tapPower[i]*float64(len(g.colRows[i])) {
				best.Ambiguous[i] = true
			}
		}
	}
	return best
}

// descend runs one greedy descent to a local optimum.
func (g *Graph) descend(y dsp.Vec, bhat bits.Vector, locked []bool, eps float64) Result {
	// residual r = y − D·H·b̂.
	residual := y.Clone()
	for i, b := range bhat {
		if b {
			for _, row := range g.colRows[i] {
				residual[row] -= g.taps[i]
			}
		}
	}

	// gain[i] per the incremental identity.
	gain := make([]float64, g.K)
	refresh := func(i int) {
		if locked != nil && locked[i] {
			gain[i] = math.Inf(-1)
			return
		}
		var corr complex128
		for _, row := range g.colRows[i] {
			corr += cmplx.Conj(g.taps[i]) * residual[row]
		}
		delta := 1.0
		if bhat[i] {
			delta = -1
		}
		gain[i] = 2*delta*real(corr) - g.tapPower[i]*float64(len(g.colRows[i]))
	}
	for i := 0; i < g.K; i++ {
		refresh(i)
	}

	flips := 0
	// Each accepted flip strictly reduces the squared error by at least
	// eps, and the error is bounded below by 0, so this terminates. The
	// hard cap is a belt-and-braces guard against pathological float
	// behaviour.
	maxFlips := 64 * (g.K + 1) * (g.L + 1)
	for flips < maxFlips {
		bestI, bestG := -1, eps
		for i := 0; i < g.K; i++ {
			if gain[i] > bestG {
				bestG = gain[i]
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		// Flip bit bestI and update the residual on its rows.
		delta := complex(1, 0)
		if bhat[bestI] {
			delta = -1
		}
		bhat[bestI] = !bhat[bestI]
		for _, row := range g.colRows[bestI] {
			residual[row] -= delta * g.taps[bestI]
		}
		flips++
		// Refresh the flipped bit and its neighbors' neighbors.
		refresh(bestI)
		for _, row := range g.colRows[bestI] {
			for _, j := range g.rowCols[row] {
				if j != bestI {
					refresh(j)
				}
			}
		}
	}
	return Result{Bits: bhat, Error: residual.NormSq(), Flips: flips}
}

// Margins returns, for each tag, the normalized flip margin of candidate
// b against observation y:
//
//	m_i = −G_i / (|h_i|²·w_i)
//
// where G_i is the flip gain (≤ 0 at a local optimum) and w_i tag i's
// participation count. A confidently decoded bit has m_i ≈ 1 — flipping
// it would add its full collision energy back as error — while a bit the
// observations barely constrain has m_i ≈ 0. Tags with w_i = 0 report 0:
// nothing has been observed about them at all.
//
// The rateless outer loop uses these margins as a CRC gate: a 5-bit
// checksum false-accepts 1 in 32 random frames, so the reader only
// checks frames whose every bit is strongly pinned (see
// ratedapt.Config.MarginThreshold).
func (g *Graph) Margins(y dsp.Vec, b bits.Vector) []float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: Margins dimension mismatch")
	}
	residual := y.Clone()
	for i, on := range b {
		if on {
			for _, row := range g.colRows[i] {
				residual[row] -= g.taps[i]
			}
		}
	}
	out := make([]float64, g.K)
	for i := 0; i < g.K; i++ {
		w := len(g.colRows[i])
		if w == 0 || g.tapPower[i] == 0 {
			continue
		}
		var corr complex128
		for _, row := range g.colRows[i] {
			corr += cmplx.Conj(g.taps[i]) * residual[row]
		}
		delta := 1.0
		if b[i] {
			delta = -1
		}
		gain := 2*delta*real(corr) - g.tapPower[i]*float64(w)
		out[i] = -gain / (g.tapPower[i] * float64(w))
	}
	return out
}

// ConditionalMargin measures how much worse the observations can be
// explained with tag i's bit forced to the opposite value: it flips bit
// i in candidate b, pins it, lets every other unlocked bit re-optimize,
// and returns
//
//	(err(best with bit i flipped) − err(b)) / (|h_i|²·w_i)
//
// The plain flip margin (Margins) only scores single-bit flips, so it is
// blind to constellation near-coincidences in which several tags' bits
// change together — the dominant false-decode mode when many tags
// collide in few slots. A conditional margin near zero says the flipped
// world explains the data almost as well: the bit is ambiguous no matter
// how confident the single-flip margin looks. Tags with no observations
// report 0.
func (g *Graph) ConditionalMargin(y dsp.Vec, b bits.Vector, i int, locked []bool, src *prng.Source) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ConditionalMargin dimension mismatch")
	}
	w := len(g.colRows[i])
	if w == 0 || g.tapPower[i] == 0 {
		return 0
	}
	base := g.ErrorOf(y, b)
	init := b.Clone()
	init[i] = !init[i]
	pin := make([]bool, g.K)
	if locked != nil {
		copy(pin, locked)
	}
	pin[i] = true
	res := g.Decode(y, Options{Init: init, Locked: pin}, src)
	return (res.Error - base) / (g.tapPower[i] * float64(w))
}

// ErrorOf computes ‖D·H·b − y‖² for an arbitrary candidate without
// running a decode; tests and diagnostics use it.
func (g *Graph) ErrorOf(y dsp.Vec, b bits.Vector) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ErrorOf dimension mismatch")
	}
	residual := y.Clone()
	for i, on := range b {
		if on {
			for _, row := range g.colRows[i] {
				residual[row] -= g.taps[i]
			}
		}
	}
	return residual.NormSq()
}
