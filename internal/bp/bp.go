// Package bp implements Buzz's belief-propagation decoder (§6c, Alg. 1):
// a gain-driven bit-flipping search over the bipartite graph whose left
// vertices are the K tags' bits at one message position and whose right
// vertices are the L received collision symbols.
//
// Given the observation y = D·H·b + n, the decoder seeks the binary
// vector b̂ minimizing ‖D·H·b̂ − y‖². It maintains, for every bit i, the
// gain G_i — the reduction in squared error from flipping bit i — and
// repeatedly flips the highest-gain bit until no flip helps. Because D is
// sparse, a flip only perturbs the symbols tag i participates in, so only
// the gains of tags sharing a symbol with i ("neighbors of neighbors" in
// the paper's graph) need updating.
//
// The incremental identity doing the work: with residual r = y − D·H·b̂,
// flipping bit i changes b̂_i by δ ∈ {+1, −1} and
//
//	G_i = ‖r‖² − ‖r − δ·h_i·d_i‖² = 2δ·Re⟨h_i·d_i, r⟩ − |h_i|²·w_i
//
// where d_i is column i of D and w_i its weight. Each gain refresh is
// O(w_i) — no norms are ever recomputed from scratch.
//
// CRC-gated freezing (§6d): once a tag's message passes its checksum in
// the outer loop, the caller locks that tag. Locked bits get gain −∞ so
// later flips can never undo a verified message — the paper's
// "set their gains to be negative infinite" interference-cancellation
// trick.
package bp

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/prng"
	"repro/internal/scratch"
)

// Graph is the decoding graph for one block of collisions: the sparse
// participation structure D plus the tags' channel taps.
type Graph struct {
	// K is the number of tags (left vertices).
	K int
	// L is the number of collision symbols (right vertices).
	L int
	// colRows[i] lists the symbols tag i participates in.
	colRows [][]int
	// rowCols[j] lists the tags participating in symbol j.
	rowCols [][]int
	// taps[i] is tag i's channel coefficient h_i.
	taps []complex128
	// tapPower[i] caches |h_i|².
	tapPower []float64
	// colFlat and rowFlat are the CSR-style backing stores the adjacency
	// lists above are views into: one contiguous block per direction,
	// reused across Rebuild calls so the rateless loop's once-per-slot
	// rebuilds stop allocating once the blocks have grown to the
	// transfer's final size.
	colFlat, rowFlat []int
	// colDeg and rowDeg are per-vertex degree counters for the CSR
	// two-pass build.
	colDeg, rowDeg []int
}

// NewGraph builds the decoding graph from the participation matrix D
// (rows = slots, cols = tags) and the channel taps. It panics on a
// tap/column count mismatch: decoding with misaligned channels would
// produce silent garbage.
func NewGraph(d *bits.Matrix, taps []complex128) *Graph {
	g := &Graph{}
	g.Rebuild(d, taps)
	return g
}

// Rebuild re-derives the graph from d and taps in place, reusing the
// adjacency storage of earlier builds. The rateless outer loop calls it
// once per slot on a long-lived Graph: D has grown by one row, the flat
// CSR blocks keep their capacity, and a steady-state rebuild (same
// dimensions as a previous one) allocates nothing.
func (g *Graph) Rebuild(d *bits.Matrix, taps []complex128) {
	if d.Cols != len(taps) {
		panic(fmt.Sprintf("bp: D has %d columns but %d taps supplied", d.Cols, len(taps)))
	}
	g.K = d.Cols
	g.L = d.Rows
	g.taps = append(g.taps[:0], taps...)
	g.tapPower = g.tapPower[:0]
	for _, h := range taps {
		g.tapPower = append(g.tapPower, real(h)*real(h)+imag(h)*imag(h))
	}
	// Pass 1: vertex degrees, to carve the flat blocks into per-vertex
	// segments.
	g.colDeg = resizeInts(g.colDeg, d.Cols)
	g.rowDeg = resizeInts(g.rowDeg, d.Rows)
	nnz := 0
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.At(r, c) {
				g.colDeg[c]++
				g.rowDeg[r]++
				nnz++
			}
		}
	}
	g.colFlat = resizeInts(g.colFlat, nnz)
	g.rowFlat = resizeInts(g.rowFlat, nnz)
	g.colRows = resizeHeaders(g.colRows, d.Cols)
	g.rowCols = resizeHeaders(g.rowCols, d.Rows)
	off := 0
	for c := range g.colRows {
		g.colRows[c] = g.colFlat[off : off : off+g.colDeg[c]]
		off += g.colDeg[c]
	}
	off = 0
	for r := range g.rowCols {
		g.rowCols[r] = g.rowFlat[off : off : off+g.rowDeg[r]]
		off += g.rowDeg[r]
	}
	// Pass 2: fill the segments.
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.At(r, c) {
				g.colRows[c] = append(g.colRows[c], r)
				g.rowCols[r] = append(g.rowCols[r], c)
			}
		}
	}
}

// resizeInts returns s with length n and every element zero, reusing
// capacity. Growth reserves power-of-two headroom: the rateless loop
// calls Rebuild with a size that creeps up one row per slot, and exact
// sizing would reallocate every slot.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n, scratch.CeilPow2(n))
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeHeaders sizes s to n slice headers, reusing capacity, with the
// same headroom policy as resizeInts.
func resizeHeaders(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n, scratch.CeilPow2(n))
	}
	return s[:n]
}

// Degree returns the participation count of tag i.
func (g *Graph) Degree(i int) int { return len(g.colRows[i]) }

// residualInto computes r = y − D·H·b into dst (length L) and returns
// dst — the one definition of the residual model shared by the descent,
// the margin computation and the error evaluation.
func (g *Graph) residualInto(dst dsp.Vec, y dsp.Vec, b bits.Vector) dsp.Vec {
	copy(dst, y)
	for i, on := range b {
		if on {
			for _, row := range g.colRows[i] {
				dst[row] -= g.taps[i]
			}
		}
	}
	return dst
}

// Options tunes a decode.
type Options struct {
	// Init seeds the search. Nil means a uniform random start (the
	// paper's initialization); the outer rateless loop passes the
	// previous slot-count's estimate so added collisions refine rather
	// than restart.
	Init bits.Vector
	// Locked marks tags whose bit values are frozen (CRC-verified).
	// Locked tags keep their Init value and are never flipped; Init must
	// be non-nil wherever Locked is true.
	Locked []bool
	// Restarts runs the search from this many additional random
	// initializations and keeps the lowest-error result. Zero means a
	// single pass.
	Restarts int
	// GainEps is the minimum gain worth flipping for; it guards against
	// floating-point limit cycles. Default 1e-12.
	GainEps float64
	// Scratch, when non-nil, supplies every working buffer of the decode
	// — candidate vectors, residuals, gains — from a per-worker arena
	// instead of the heap. The numerics are identical either way. With a
	// Scratch set, Result.Bits and Result.Ambiguous are arena-backed:
	// they remain valid only until the caller's next Release or Reset of
	// the arena, so callers bracket Decode with Mark/Release and copy out
	// anything they keep.
	Scratch *scratch.Scratch
}

// Result reports a decode outcome.
type Result struct {
	// Bits is the best b̂ found.
	Bits bits.Vector
	// Error is ‖D·H·b̂ − y‖² at Bits.
	Error float64
	// Flips counts bit flips performed across all restarts.
	Flips int
	// Ambiguous flags tags whose bit differs between the best solution
	// and another restart's solution of nearly equal error. This is the
	// decoder's defense against signed near-zero subset sums of taps
	// (Σ ±h_i ≈ 0): a coordinated multi-bit flip over such a subset is
	// invisible to the observations, defeats single-flip margins, and
	// cannot be traversed by greedy conditional re-optimization — but
	// independent random restarts land in both basins and expose the
	// tie. "Nearly equal" means the error gap is below half the tag's
	// own collision energy |h_i|²: the gap an honest single-bit error
	// would create.
	Ambiguous []bool
}

// Decode runs the bit-flipping search for one bit position. y must hold
// exactly L symbols. src drives the random initializations.
func (g *Graph) Decode(y dsp.Vec, opts Options, src *prng.Source) Result {
	if len(y) != g.L {
		panic(fmt.Sprintf("bp: observation length %d != L %d", len(y), g.L))
	}
	if opts.Locked != nil && len(opts.Locked) != g.K {
		panic(fmt.Sprintf("bp: Locked length %d != K %d", len(opts.Locked), g.K))
	}
	if opts.Init != nil && len(opts.Init) != g.K {
		panic(fmt.Sprintf("bp: Init length %d != K %d", len(opts.Init), g.K))
	}
	eps := opts.GainEps
	if eps == 0 {
		eps = 1e-12
	}
	sc := opts.Scratch

	// One contiguous block holds every pass's candidate so the
	// tie-detection sweep below can revisit all of them without keeping a
	// slice of Results around.
	passes := 1 + opts.Restarts
	allBits := sc.Bool(passes * g.K)
	passErr := sc.Float(passes)
	totalFlips := 0
	bestPass := 0
	bestErr := math.Inf(1)
	for pass := 0; pass < passes; pass++ {
		bhat := bits.Vector(allBits[pass*g.K : (pass+1)*g.K])
		switch {
		case pass == 0 && opts.Init != nil:
			copy(bhat, opts.Init)
		default:
			bits.RandomInto(src, bhat)
			// Random restarts must still respect locks.
			if opts.Locked != nil && opts.Init != nil {
				for i, l := range opts.Locked {
					if l {
						bhat[i] = opts.Init[i]
					}
				}
			}
		}
		errV, flips := g.descend(y, bhat, opts.Locked, eps, sc)
		passErr[pass] = errV
		totalFlips += flips
		if errV < bestErr {
			bestErr = errV
			bestPass = pass
		}
	}
	best := Result{
		Bits:      bits.Vector(allBits[bestPass*g.K : (bestPass+1)*g.K]),
		Error:     bestErr,
		Flips:     totalFlips,
		Ambiguous: sc.Bool(g.K),
	}
	// Tie detection: any alternative local optimum whose error is within
	// a tag's own collision energy of the best, yet disagrees on that
	// tag's bit, marks the tag ambiguous.
	for pass := 0; pass < passes; pass++ {
		alt := allBits[pass*g.K : (pass+1)*g.K]
		gap := passErr[pass] - bestErr
		for i := 0; i < g.K; i++ {
			if alt[i] != bool(best.Bits[i]) && gap < 0.15*g.tapPower[i]*float64(len(g.colRows[i])) {
				best.Ambiguous[i] = true
			}
		}
	}
	return best
}

// descend runs one greedy descent to a local optimum, mutating bhat in
// place; it returns the final squared error and the flip count.
func (g *Graph) descend(y dsp.Vec, bhat bits.Vector, locked []bool, eps float64, sc *scratch.Scratch) (float64, int) {
	mark := sc.Mark()
	residual := g.residualInto(dsp.Vec(sc.Complex(len(y))), y, bhat)

	// gain[i] per the incremental identity.
	gain := sc.Float(g.K)
	refresh := func(i int) {
		if locked != nil && locked[i] {
			gain[i] = math.Inf(-1)
			return
		}
		var corr complex128
		for _, row := range g.colRows[i] {
			corr += cmplx.Conj(g.taps[i]) * residual[row]
		}
		delta := 1.0
		if bhat[i] {
			delta = -1
		}
		gain[i] = 2*delta*real(corr) - g.tapPower[i]*float64(len(g.colRows[i]))
	}
	for i := 0; i < g.K; i++ {
		refresh(i)
	}

	flips := 0
	// Each accepted flip strictly reduces the squared error by at least
	// eps, and the error is bounded below by 0, so this terminates. The
	// hard cap is a belt-and-braces guard against pathological float
	// behaviour.
	maxFlips := 64 * (g.K + 1) * (g.L + 1)
	for flips < maxFlips {
		bestI, bestG := -1, eps
		for i := 0; i < g.K; i++ {
			if gain[i] > bestG {
				bestG = gain[i]
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		// Flip bit bestI and update the residual on its rows.
		delta := complex(1, 0)
		if bhat[bestI] {
			delta = -1
		}
		bhat[bestI] = !bhat[bestI]
		for _, row := range g.colRows[bestI] {
			residual[row] -= delta * g.taps[bestI]
		}
		flips++
		// Refresh the flipped bit and its neighbors' neighbors.
		refresh(bestI)
		for _, row := range g.colRows[bestI] {
			for _, j := range g.rowCols[row] {
				if j != bestI {
					refresh(j)
				}
			}
		}
	}
	errV := residual.NormSq()
	sc.Release(mark)
	return errV, flips
}

// Margins returns, for each tag, the normalized flip margin of candidate
// b against observation y:
//
//	m_i = −G_i / (|h_i|²·w_i)
//
// where G_i is the flip gain (≤ 0 at a local optimum) and w_i tag i's
// participation count. A confidently decoded bit has m_i ≈ 1 — flipping
// it would add its full collision energy back as error — while a bit the
// observations barely constrain has m_i ≈ 0. Tags with w_i = 0 report 0:
// nothing has been observed about them at all.
//
// The rateless outer loop uses these margins as a CRC gate: a 5-bit
// checksum false-accepts 1 in 32 random frames, so the reader only
// checks frames whose every bit is strongly pinned (see
// ratedapt.Config.MarginThreshold).
func (g *Graph) Margins(y dsp.Vec, b bits.Vector) []float64 {
	return g.MarginsInto(make([]float64, g.K), y, b, nil)
}

// MarginsInto is Margins computed into out (which must have length K),
// with the residual drawn from sc; the allocation-free form the rateless
// outer loop calls once per bit position per slot. A nil sc falls back
// to plain allocation.
func (g *Graph) MarginsInto(out []float64, y dsp.Vec, b bits.Vector, sc *scratch.Scratch) []float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: Margins dimension mismatch")
	}
	if len(out) != g.K {
		panic(fmt.Sprintf("bp: MarginsInto out length %d != K %d", len(out), g.K))
	}
	mark := sc.Mark()
	residual := g.residualInto(dsp.Vec(sc.Complex(len(y))), y, b)
	for i := 0; i < g.K; i++ {
		out[i] = 0
		w := len(g.colRows[i])
		if w == 0 || g.tapPower[i] == 0 {
			continue
		}
		var corr complex128
		for _, row := range g.colRows[i] {
			corr += cmplx.Conj(g.taps[i]) * residual[row]
		}
		delta := 1.0
		if b[i] {
			delta = -1
		}
		gain := 2*delta*real(corr) - g.tapPower[i]*float64(w)
		out[i] = -gain / (g.tapPower[i] * float64(w))
	}
	sc.Release(mark)
	return out
}

// ConditionalMargin measures how much worse the observations can be
// explained with tag i's bit forced to the opposite value: it flips bit
// i in candidate b, pins it, lets every other unlocked bit re-optimize,
// and returns
//
//	(err(best with bit i flipped) − err(b)) / (|h_i|²·w_i)
//
// The plain flip margin (Margins) only scores single-bit flips, so it is
// blind to constellation near-coincidences in which several tags' bits
// change together — the dominant false-decode mode when many tags
// collide in few slots. A conditional margin near zero says the flipped
// world explains the data almost as well: the bit is ambiguous no matter
// how confident the single-flip margin looks. Tags with no observations
// report 0.
func (g *Graph) ConditionalMargin(y dsp.Vec, b bits.Vector, i int, locked []bool, src *prng.Source) float64 {
	return g.ConditionalMarginScratch(y, b, i, locked, src, nil)
}

// ConditionalMarginScratch is ConditionalMargin with the working buffers
// — the flipped candidate, the pin mask, and the inner re-decode — drawn
// from sc. Nothing escapes: the arena is released before returning.
func (g *Graph) ConditionalMarginScratch(y dsp.Vec, b bits.Vector, i int, locked []bool, src *prng.Source, sc *scratch.Scratch) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ConditionalMargin dimension mismatch")
	}
	w := len(g.colRows[i])
	if w == 0 || g.tapPower[i] == 0 {
		return 0
	}
	mark := sc.Mark()
	defer sc.Release(mark)
	base := g.errorOf(y, b, sc)
	init := bits.Vector(sc.Bool(g.K))
	copy(init, b)
	init[i] = !init[i]
	pin := sc.Bool(g.K)
	if locked != nil {
		copy(pin, locked)
	}
	pin[i] = true
	res := g.Decode(y, Options{Init: init, Locked: pin, Scratch: sc}, src)
	return (res.Error - base) / (g.tapPower[i] * float64(w))
}

// ErrorOf computes ‖D·H·b − y‖² for an arbitrary candidate without
// running a decode; tests and diagnostics use it.
func (g *Graph) ErrorOf(y dsp.Vec, b bits.Vector) float64 {
	return g.errorOf(y, b, nil)
}

func (g *Graph) errorOf(y dsp.Vec, b bits.Vector, sc *scratch.Scratch) float64 {
	if len(b) != g.K || len(y) != g.L {
		panic("bp: ErrorOf dimension mismatch")
	}
	mark := sc.Mark()
	errV := g.residualInto(dsp.Vec(sc.Complex(len(y))), y, b).NormSq()
	sc.Release(mark)
	return errV
}
