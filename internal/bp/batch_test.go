package bp

import (
	"testing"

	"repro/internal/prng"
)

// TestBatchLockstepMatchesScalarInterleavings is the lockstep
// equivalence property test: B slab-carved lanes driven through random
// interleavings of Grow, RetapAll and Retire — the full dynamic-session
// mutation surface — via Batch.Decode must match B independent
// heap-backed sessions fed the identical inputs through scalar
// DecodeSlot, exactly: same margins, same ambiguity flags, same
// per-position bits and errors, same descent/restart/flip counts. The
// lanes grow past the carve's kCap mid-run, so the slab-detach path is
// exercised too.
func TestBatchLockstepMatchesScalarInterleavings(t *testing.T) {
	const (
		B        = 3
		k0       = 3
		kCap     = 5 // deliberately below the final K: growth detaches lanes
		frameLen = 16
		maxSlots = 40
		restarts = 1
		nSlots   = 24
		kMax     = 7
	)
	b := NewBatch(2)
	defer b.Close()
	lanes := b.Carve(B, kCap, frameLen, maxSlots, restarts)
	twins := make([]*Session, B)
	defer func() {
		for _, tw := range twins {
			if tw != nil {
				tw.Close()
			}
		}
	}()
	drv := make([]*prng.Source, B)
	taps := make([][]complex128, B)
	locked := make([][]bool, B)
	for l := 0; l < B; l++ {
		drv[l] = prng.NewSource(prng.Mix2(0xBA7C4, uint64(l)))
		taps[l] = randomTaps(k0, drv[l])
		lanes[l].Begin(k0, frameLen, maxSlots, 1, restarts, taps[l])
		twins[l] = NewSession()
		twins[l].Begin(k0, frameLen, maxSlots, 1, restarts, taps[l])
		est := randomEstimates(k0, frameLen, drv[l])
		lanes[l].InitPositions(est)
		twins[l].InitPositions(est)
		locked[l] = make([]bool, k0)
	}

	// One op schedule shared by every lane (Batch.Decode requires shape
	// uniformity — exactly the grouping the engine enforces); per-lane
	// taps, rows, observations and lock patterns all differ.
	ops := prng.NewSource(0xD1CE5)
	k := k0
	jobs := make([]SlotJob, B)
	bases := make([]uint64, B)
	for slot := 1; slot <= nSlots; slot++ {
		if k < kMax && ops.Bernoulli(0.3) {
			n := 1 + ops.IntN(kMax-k)
			for l := range lanes {
				grown := randomTaps(n, drv[l])
				est := randomEstimates(n, frameLen, drv[l])
				lanes[l].Grow(grown, est)
				twins[l].Grow(grown, est)
				taps[l] = append(taps[l], grown...)
				locked[l] = append(locked[l], make([]bool, n)...)
			}
			k += n
		}
		if ops.Bernoulli(0.25) {
			for l := range lanes {
				for i := range taps[l] {
					if !locked[l][i] {
						taps[l][i] += complex(0.03*drv[l].Float64(), 0.03*drv[l].Float64())
					}
				}
				lanes[l].RetapAll(taps[l])
				twins[l].RetapAll(taps[l])
			}
		}
		if slot > 5 && ops.Bernoulli(0.2) {
			for l := range lanes {
				lanes[l].Retire(slot - 5)
				twins[l].Retire(slot - 5)
			}
		}

		lm := make([][]float64, B)
		la := make([][]bool, B)
		for l := range lanes {
			d := &sessionDriver{k: k, frameLen: frameLen, src: drv[l]}
			row, obs := d.slot()
			lanes[l].AppendSlot(row, obs)
			twins[l].AppendSlot(row, obs)
			bases[l] = drv[l].Uint64()
			lm[l] = make([]float64, k)
			la[l] = make([]bool, k)
			jobs[l] = SlotJob{
				S: lanes[l], Slot: slot, Locked: locked[l], Base: bases[l],
				MinMargin: lm[l], Ambiguous: la[l],
			}
		}
		b.Decode(jobs)
		for l := range jobs {
			if jobs[l].Panicked != nil {
				t.Fatalf("slot %d lane %d: decode panicked: %v", slot, l, jobs[l].Panicked)
			}
		}
		for l := range twins {
			tm := make([]float64, k)
			ta := make([]bool, k)
			twins[l].DecodeSlot(slot, locked[l], bases[l], tm, ta)
			for i := 0; i < k; i++ {
				if lm[l][i] != tm[i] || la[l][i] != ta[i] {
					t.Fatalf("slot %d lane %d tag %d: batch (%v,%v) != scalar (%v,%v)",
						slot, l, i, lm[l][i], la[l][i], tm[i], ta[i])
				}
			}
			for p := 0; p < frameLen; p++ {
				if lanes[l].PosError(p) != twins[l].PosError(p) {
					t.Fatalf("slot %d lane %d position %d: error %v != %v",
						slot, l, p, lanes[l].PosError(p), twins[l].PosError(p))
				}
				pa, pb := lanes[l].PosBits(p), twins[l].PosBits(p)
				for i := 0; i < k; i++ {
					if pa[i] != pb[i] {
						t.Fatalf("slot %d lane %d position %d tag %d: bits diverged", slot, l, p, i)
					}
				}
			}
		}

		// Lock each lane's strongest unlocked tag now and then; the lock
		// pattern stays monotonic and, having been derived from matching
		// margins, identical between lane and twin.
		if ops.Bernoulli(0.35) {
			for l := range lanes {
				best := -1
				for i := range lm[l] {
					if !locked[l][i] && (best < 0 || lm[l][i] > lm[l][best]) {
						best = i
					}
				}
				if best >= 0 && lm[l][best] > 0 {
					locked[l][best] = true
				}
			}
		}
	}
	if k <= kCap {
		t.Fatalf("schedule never grew past the carve cap (k=%d, kCap=%d); detach path untested", k, kCap)
	}
	for l := range lanes {
		lc, tc := lanes[l].TakeDecodeCost(), twins[l].TakeDecodeCost()
		if lc != tc {
			t.Fatalf("lane %d: decode cost %+v != scalar %+v", l, lc, tc)
		}
		if lc.DescentPasses == 0 || lc.Flips == 0 {
			t.Fatalf("lane %d: degenerate cost counters %+v", l, lc)
		}
	}
}

// TestBatchWarmSlotPathAllocationFree pins the lockstep tentpole's
// steady-state property: once the carved slabs and worker arenas are
// warm, a full batched slot — B appends plus one Batch.Decode — heap-
// allocates nothing.
func TestBatchWarmSlotPathAllocationFree(t *testing.T) {
	const (
		B        = 4
		k        = 8
		frameLen = 24
		maxSlots = 128
		restarts = 1
		warmup   = 4
	)
	b := NewBatch(1)
	defer b.Close()
	lanes := b.Carve(B, k, frameLen, maxSlots, restarts)
	drv := make([]*prng.Source, B)
	rows := make([][]bool, B)
	obs := make([][]complex128, B)
	locked := make([][]bool, B)
	margins := make([][]float64, B)
	amb := make([][]bool, B)
	for l := 0; l < B; l++ {
		drv[l] = prng.NewSource(prng.Mix2(0xA110C, uint64(l)))
		taps := randomTaps(k, drv[l])
		lanes[l].Begin(k, frameLen, maxSlots, 1, restarts, taps)
		lanes[l].InitPositions(randomEstimates(k, frameLen, drv[l]))
		d := &sessionDriver{k: k, frameLen: frameLen, src: drv[l]}
		r, o := d.slot()
		rows[l], obs[l] = r, o
		locked[l] = make([]bool, k)
		margins[l] = make([]float64, k)
		amb[l] = make([]bool, k)
	}
	jobs := make([]SlotJob, B)
	slot := 0
	cycle := func() {
		slot++
		for l := range lanes {
			lanes[l].AppendSlot(rows[l], obs[l])
			jobs[l] = SlotJob{
				S: lanes[l], Slot: slot, Locked: locked[l], Base: 0x5EED,
				MinMargin: margins[l], Ambiguous: amb[l],
			}
		}
		b.Decode(jobs)
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("warm batched slot path allocates %v times per slot, want 0", allocs)
	}
}
