package bp

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/prng"
)

func TestMarginsNonNegativeAtLocalOptimum(t *testing.T) {
	// By definition of the stopping rule, no single flip improves the
	// error at the decoder's output, so every margin (= −gain/energy)
	// is ≥ 0 up to the epsilon guard.
	src := prng.NewSource(21)
	for trial := 0; trial < 30; trial++ {
		k := 4 + src.IntN(10)
		g, y, _, _ := buildProblem(src, k, 2*k, 0.4, 12, true)
		res := g.Decode(y, Options{Restarts: 1}, src.Fork(uint64(trial)))
		for i, m := range g.Margins(y, res.Bits) {
			if g.Degree(i) == 0 {
				if m != 0 {
					t.Fatalf("unobserved tag %d has margin %f, want 0", i, m)
				}
				continue
			}
			if m < -1e-9 {
				t.Fatalf("trial %d tag %d: negative margin %f at a local optimum", trial, i, m)
			}
		}
	}
}

func TestMarginsHighAtTruthCleanChannel(t *testing.T) {
	// At the true bits with negligible noise, flipping any observed bit
	// adds its full collision energy: margins ≈ 1.
	src := prng.NewSource(22)
	g, y, truth, _ := buildProblem(src, 8, 24, 0.4, 40, false)
	for i, m := range g.Margins(y, truth) {
		if g.Degree(i) == 0 {
			continue
		}
		if m < 0.95 || m > 1.05 {
			t.Fatalf("tag %d margin %f at truth, want ~1", i, m)
		}
	}
}

func TestConditionalMarginDetectsPairSwap(t *testing.T) {
	// Two tags with identical taps and identical participation are
	// fundamentally interchangeable: the conditional margin must expose
	// that, while the plain flip margin does not.
	h := complex(1, 0.5)
	d := bits.NewMatrix(0, 2)
	for i := 0; i < 6; i++ {
		d.AppendRow(bits.Vector{true, true}) // always both
	}
	g := NewGraph(d, []complex128{h, h})
	// Truth: tag 0 sends 1, tag 1 sends 0 → y = h per slot. The swapped
	// assignment explains y equally well.
	y := make(dsp.Vec, 6)
	for i := range y {
		y[i] = h
	}
	b := bits.Vector{true, false}
	src := prng.NewSource(23)

	plain := g.Margins(y, b)
	if plain[0] < 0.9 {
		t.Fatalf("plain margin %f should look confident (that is the trap)", plain[0])
	}
	cond := g.ConditionalMargin(y, b, 0, nil, src)
	if cond > 0.1 {
		t.Fatalf("conditional margin %f should expose the swap ambiguity", cond)
	}
}

func TestConditionalMarginHighWhenUnambiguous(t *testing.T) {
	// Distinct taps: forcing a bit wrong and re-optimizing cannot
	// recover the fit, so the conditional margin stays near 1.
	src := prng.NewSource(24)
	m := channel.NewExact([]complex128{complex(2, 0), complex(0, 1)}, 0)
	d := bits.NewMatrix(0, 2)
	truth := bits.Vector{true, true}
	var y dsp.Vec
	for i := 0; i < 6; i++ {
		row := bits.Vector{true, i%2 == 0}
		d.AppendRow(row)
		y = append(y, m.Noiseless([]bool{row[0] && truth[0], row[1] && truth[1]}))
	}
	g := NewGraph(d, m.Taps)
	for i := 0; i < 2; i++ {
		if cm := g.ConditionalMargin(y, truth, i, nil, src); cm < 0.8 {
			t.Fatalf("tag %d conditional margin %f, want ~1", i, cm)
		}
	}
}

func TestConditionalMarginUnobservedTag(t *testing.T) {
	d := bits.NewMatrix(0, 2)
	d.AppendRow(bits.Vector{true, false})
	g := NewGraph(d, []complex128{1, 1})
	if cm := g.ConditionalMargin(dsp.Vec{1}, bits.Vector{true, false}, 1, nil, prng.NewSource(1)); cm != 0 {
		t.Fatalf("unobserved tag conditional margin %f, want 0", cm)
	}
}

func TestAmbiguousFlagOnTiedSolutions(t *testing.T) {
	// Same interchangeable-pair setup: across restarts the decoder
	// should land in both swap states and flag both tags ambiguous.
	h := complex(1, 0.5)
	d := bits.NewMatrix(0, 2)
	for i := 0; i < 6; i++ {
		d.AppendRow(bits.Vector{true, true})
	}
	g := NewGraph(d, []complex128{h, h})
	y := make(dsp.Vec, 6)
	for i := range y {
		y[i] = h
	}
	flagged := false
	for seed := uint64(0); seed < 10 && !flagged; seed++ {
		res := g.Decode(y, Options{Restarts: 4}, prng.NewSource(seed))
		flagged = res.Ambiguous[0] || res.Ambiguous[1]
	}
	if !flagged {
		t.Fatal("tied swap states never flagged as ambiguous across 10 seeds")
	}
}

func TestAmbiguousNotFlaggedOnCleanProblem(t *testing.T) {
	// A well-separated problem must not cry wolf: no ambiguity flags on
	// a strong clean channel.
	src := prng.NewSource(25)
	falsePositives := 0
	checks := 0
	for trial := 0; trial < 20; trial++ {
		g, y, _, _ := buildProblem(src, 6, 18, 0.4, 30, false)
		res := g.Decode(y, Options{Restarts: 3}, src.Fork(uint64(trial)))
		for i, a := range res.Ambiguous {
			if g.Degree(i) == 0 {
				continue
			}
			checks++
			if a {
				falsePositives++
			}
		}
	}
	if falsePositives*10 > checks {
		t.Fatalf("ambiguity flagged on %d/%d clean decodes", falsePositives, checks)
	}
}

func TestMarginsPanicOnDimensionMismatch(t *testing.T) {
	g := NewGraph(bits.NewMatrix(2, 2), []complex128{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Margins(dsp.Vec{1}, bits.Vector{true, false})
}
