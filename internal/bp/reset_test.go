package bp

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
)

// TestResetRecycledSessionMatchesFresh pins the pool-recycling
// contract: a session that ran a full (different-shaped) transfer and
// was Reset decodes a subsequent transfer byte-identically to a fresh
// session — no graph rows, taps, drift ledgers or cached state leak
// through the recycle.
func TestResetRecycledSessionMatchesFresh(t *testing.T) {
	const k, frameLen, maxSlots = 6, 20, 48

	// Dirty the recycled session with a different-shaped transfer,
	// window accounting armed, so stale state of every kind is present.
	recycled := &Session{}
	{
		src := prng.NewSource(0xD1147)
		dk, dlen := k+3, frameLen+5
		recycled.Begin(dk, dlen, maxSlots, 1, 2, randomTaps(dk, src))
		recycled.TrackDrift(true)
		recycled.InitPositions(randomEstimates(dk, dlen, src))
		drv := &sessionDriver{k: dk, frameLen: dlen, src: src}
		locked := make([]bool, dk)
		mm, amb := make([]float64, dk), make([]bool, dk)
		for slot := 1; slot <= 12; slot++ {
			row, obs := drv.slot()
			recycled.AppendSlot(row, obs)
			recycled.DecodeSlot(slot, locked, 0xBA5E, mm, amb)
			if slot > 6 {
				recycled.Retire(slot - 6)
			}
		}
	}
	recycled.Reset()

	fresh := &Session{}
	src1 := prng.NewSource(0x5E55)
	src2 := prng.NewSource(0x5E55)
	taps := randomTaps(k, src1)
	randomTaps(k, src2) // keep the streams aligned
	est := randomEstimates(k, frameLen, src1)
	est2 := randomEstimates(k, frameLen, src2)

	fresh.Begin(k, frameLen, maxSlots, 1, 2, taps)
	recycled.Begin(k, frameLen, maxSlots, 1, 2, taps)
	fresh.InitPositions(est)
	recycled.InitPositions(est2)

	drv := &sessionDriver{k: k, frameLen: frameLen, src: src1}
	locked := make([]bool, k)
	for slot := 1; slot <= 20; slot++ {
		row, obs := drv.slot()
		fresh.AppendSlot(row, obs)
		recycled.AppendSlot(row.Clone(), append([]complex128(nil), obs...))
		decodeCompare(t, fresh, recycled, slot, locked, 0xF00D, k, frameLen, 0)
	}
}

// TestResetRecycleZeroAllocs pins the engine pool's warm path: once a
// session has run one transfer of a given shape, the full recycle cycle
// — Reset, same-shaped Begin, a transfer's worth of append/decode
// slots — performs zero heap allocations.
func TestResetRecycleZeroAllocs(t *testing.T) {
	const k, frameLen, maxSlots, nSlots = 8, 24, 32, 10

	src := prng.NewSource(0xA110C)
	taps := randomTaps(k, src)
	est := randomEstimates(k, frameLen, src)
	drv := &sessionDriver{k: k, frameLen: frameLen, src: src}
	rows := make([]bits.Vector, nSlots)
	obs := make([][]complex128, nSlots)
	for s := range rows {
		rows[s], obs[s] = drv.slot()
	}
	locked := make([]bool, k)
	mm, amb := make([]float64, k), make([]bool, k)

	sess := &Session{}
	cycle := func() {
		sess.Reset()
		sess.Begin(k, frameLen, maxSlots, 1, 1, taps)
		sess.InitPositions(est)
		for s := 0; s < nSlots; s++ {
			sess.AppendSlot(rows[s], obs[s])
			sess.DecodeSlot(s+1, locked, 0xBEEF, mm, amb)
		}
	}
	cycle() // warm-up: sizes every buffer for this shape
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("warm Reset/Begin/decode recycle allocates %v times per cycle, want 0", allocs)
	}
}
