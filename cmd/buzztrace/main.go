// Command buzztrace emits the signal-level series behind the paper's
// Fig. 2 (collision magnitude traces), Fig. 3 (constellations) and
// Fig. 8 (clock-drift alignment) as CSV on stdout, ready for plotting.
//
// Usage:
//
//	buzztrace -fig 2 [-tags 2] [-bits 40] [-seed 2012]   # magnitude vs time
//	buzztrace -fig 3 [-tags 2] [-seed 2012]              # I,Q constellation
//	buzztrace -fig 8 [-seed 2012]                        # drift summary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "2", "figure to trace: 2, 3 or 8")
	tags := flag.Int("tags", 2, "number of colliding tags (1-3)")
	nBits := flag.Int("bits", 40, "number of bits in the magnitude trace")
	seed := flag.Uint64("seed", 2012, "seed")
	flag.Parse()

	if *tags < 1 || *tags > 3 {
		fmt.Fprintln(os.Stderr, "buzztrace: -tags must be 1..3")
		os.Exit(2)
	}

	switch *fig {
	case "2":
		series := trace.MagnitudeTrace(*tags, *nBits, *seed)
		fmt.Print(trace.CSV("time_us,magnitude", series))
	case "3":
		pts, minDist := trace.Constellation(*tags, *seed)
		fmt.Print(trace.ConstellationCSV(pts))
		fmt.Fprintf(os.Stderr, "min pairwise distance: %.4f\n", minDist)
	case "8":
		uncorr, corr := trace.DriftAlignment(*seed)
		fmt.Printf("corrected,smeared_fraction\nfalse,%.4f\ntrue,%.4f\n", uncorr, corr)
	default:
		fmt.Fprintf(os.Stderr, "buzztrace: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
