// Command buzzd is the streaming decode daemon: many reader front ends
// stream collision slots at it over the wire protocol
// (internal/engine/wire) and get payload decisions back, all sessions
// decoding through the same session-manager engine the batch simulator
// runs on — the goldens pin that a streamed session and a batch trial
// at the same seed decide identically.
//
// Usage:
//
//	buzzd [-listen :4117] [-unix /run/buzzd.sock] [-http :8117]
//	      [-workers N] [-max-sessions N] [-drain-timeout 30s]
//	      [-idle-timeout 0] [-read-timeout 0] [-write-timeout 0]
//	      [-malformed-budget 3]
//
// The daemon serves the binary protocol on TCP (-listen) and/or a unix
// socket (-unix), and introspection over HTTP (-http): GET /statsz for
// the live counters as JSON, GET /healthz for liveness (503 while
// draining), and /debug/vars (expvar). On SIGINT/SIGTERM it stops
// accepting, lets live sessions finish for up to -drain-timeout, then
// force-closes what remains; a clean drain exits 0.
//
// The failure-model knobs: -idle-timeout drops a connection that starts
// no frame in time, -read-timeout one that stalls mid-frame,
// -write-timeout one that stops reading replies; -max-sessions bounds
// live sessions (excess Opens get a typed Busy error); and
// -malformed-budget is how many well-framed-but-undecodable frames a
// connection may send before being dropped. Every refusal moves a
// per-reason counter on /statsz and /debug/vars.
//
// Client mode replays a scenario spec against a running daemon and
// reports what came back — the loopback smoke check:
//
//	buzzd -connect localhost:4117 -replay examples/scenarios/mobility.json
//	      [-retries 5] [-io-timeout 30s]
//
// The client reconnects on transport failure with exponential backoff +
// jitter, re-opening unfinished trials idempotently; -retries bounds
// connection attempts per trial and -io-timeout bounds each frame
// exchange. Every trial's payload decisions are verified against the
// ground-truth messages the replay client itself transmitted; any wrong
// payload exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bits"
	"repro/internal/engine"
	"repro/internal/engine/replay"
	"repro/internal/engine/wire"
	"repro/internal/scenario"
)

func main() {
	listen := flag.String("listen", ":4117", "TCP address for the wire protocol (empty disables)")
	unixPath := flag.String("unix", "", "unix socket path for the wire protocol (empty disables)")
	httpAddr := flag.String("http", "", "HTTP introspection address: /statsz, /healthz, /debug/vars (empty disables)")
	workers := flag.Int("workers", 0, "decode shard workers (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrently live sessions (0 = unlimited; excess Opens get Busy)")
	batch := flag.Int("batch", 0, "lockstep decode batch: same-shaped sessions queued on a shard decode together, up to this many (0 = 1, scalar)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for live sessions before force-closing")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop a connection that starts no frame within this (0 = no bound)")
	readTimeout := flag.Duration("read-timeout", 0, "drop a connection that stalls mid-frame for this long (0 = no bound)")
	writeTimeout := flag.Duration("write-timeout", 0, "drop a connection whose reply write blocks this long (0 = no bound)")
	malformedBudget := flag.Int("malformed-budget", engine.DefaultMalformedBudget,
		"malformed-but-framed frames tolerated per connection before dropping it (negative = none)")
	connect := flag.String("connect", "", "client mode: address of a running daemon")
	replayPath := flag.String("replay", "", "client mode: scenario spec to replay against -connect")
	retries := flag.Int("retries", 5, "client mode: connection attempts per trial (reconnect with backoff + jitter)")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "client mode: per-frame-exchange deadline (0 = none)")
	flag.Parse()

	if *connect != "" || *replayPath != "" {
		if err := runClient(*connect, *replayPath, *retries, *ioTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "buzzd:", err)
			os.Exit(1)
		}
		return
	}
	scfg := engine.ServerConfig{
		IdleTimeout:     *idleTimeout,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		MalformedBudget: *malformedBudget,
	}
	if err := runDaemon(*listen, *unixPath, *httpAddr, *workers, *maxSessions, *batch, *drainTimeout, scfg); err != nil {
		fmt.Fprintln(os.Stderr, "buzzd:", err)
		os.Exit(1)
	}
}

func runDaemon(listen, unixPath, httpAddr string, workers, maxSessions, batch int, drainTimeout time.Duration, scfg engine.ServerConfig) error {
	if listen == "" && unixPath == "" {
		return fmt.Errorf("nothing to serve: both -listen and -unix are empty")
	}
	m := engine.New(engine.Config{Workers: workers, MaxSessions: maxSessions, LockstepBatch: batch})
	srv := engine.NewServer(m, scfg)

	var draining bool
	expvar.Publish("buzzd", expvar.Func(func() any { return m.Snapshot() }))

	serveErr := make(chan error, 3)
	var listeners []net.Listener
	addListener := func(network, addr string) error {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		listeners = append(listeners, ln)
		fmt.Printf("buzzd: serving %s on %s\n", network, ln.Addr())
		go func() { serveErr <- srv.Serve(ln) }()
		return nil
	}
	if listen != "" {
		if err := addListener("tcp", listen); err != nil {
			return err
		}
	}
	if unixPath != "" {
		os.Remove(unixPath)
		if err := addListener("unix", unixPath); err != nil {
			return err
		}
		defer os.Remove(unixPath)
	}

	var httpSrv *http.Server
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(m.Snapshot())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if draining {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		mux.Handle("/debug/vars", expvar.Handler())
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("buzzd: introspection on http://%s\n", hln.Addr())
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				serveErr <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("buzzd: %v — draining (timeout %v)\n", s, drainTimeout)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	draining = true
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if httpSrv != nil {
		httpSrv.Close()
	}
	snap := m.Snapshot()
	fmt.Printf("buzzd: drained — %d sessions served, %d slots, %d payloads, %d shed\n",
		snap.SessionsClosed, snap.SlotsIngested, snap.PayloadsAccepted, snap.SessionsShed)
	fmt.Printf("buzzd: failures — %d busy-rejected, %d deadline drops, %d malformed frames, %d panics recovered\n",
		snap.BusyRejected, snap.DeadlineDrops, snap.MalformedFrames, snap.PanicsRecovered)
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w (%d sessions force-closed)", drainErr, snap.ActiveSessions)
	}
	return nil
}

// runClient replays a scenario against a running daemon through the
// reconnecting replay client and scores the returned payloads against
// the messages it transmitted.
func runClient(addr, specPath string, retries int, ioTimeout time.Duration) error {
	if addr == "" || specPath == "" {
		return fmt.Errorf("client mode needs both -connect and -replay")
	}
	spec, err := scenario.Load(specPath)
	if err != nil {
		return err
	}
	crc, err := spec.CRCKind()
	if err != nil {
		return err
	}
	var reconnects int
	cl := &replay.Client{
		Dial:        func() (net.Conn, error) { return net.Dial(dialNetwork(addr), addr) },
		IOTimeout:   ioTimeout,
		MaxAttempts: retries,
		Seed:        uint64(time.Now().UnixNano()),
		OnRetry: func(trial, attempt int, err error) {
			reconnects++
			fmt.Fprintf(os.Stderr, "buzzd: trial %d attempt %d failed (%v), retrying\n", trial, attempt, err)
		},
	}
	defer cl.Close()

	start := time.Now()
	results, err := cl.RunScenario(spec)
	if err != nil {
		return err
	}
	delivered, wrong, retired := 0, 0, 0
	for _, tr := range results {
		pay := tr.Payloads(crc)
		for i, ok := range tr.Verified {
			if !ok {
				continue
			}
			delivered++
			if !pay[i].Equal(bits.Vector(tr.Messages[i])) {
				wrong++
			}
		}
		for _, r := range tr.Retired {
			if r {
				retired++
			}
		}
	}
	// Stats ride a fresh plain connection: the replay conn may have been
	// retired by a late fault, and stats must not fail the replay.
	var stats *wire.StatsReply
	if sc, err := net.Dial(dialNetwork(addr), addr); err == nil {
		stats, err = replay.FetchStats(sc)
		sc.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "buzzd: stats fetch failed: %v\n", err)
		}
	}
	kTot := spec.TotalTags()
	fmt.Printf("scenario %q: %d trials x %d tags streamed in %.2fs (%d reconnects)\n",
		spec.Name, len(results), kTot, time.Since(start).Seconds(), reconnects)
	fmt.Printf("  delivered %d/%d payloads, %d wrong, %d retired by departure\n",
		delivered, len(results)*kTot, wrong, retired)
	if stats != nil {
		fmt.Printf("  daemon: %d sessions open, %d opened, %d slots ingested, %d payloads, %d shed\n",
			stats.ActiveSessions, stats.SessionsOpened, stats.SlotsIngested, stats.PayloadsAccepted, stats.SessionsShed)
		fmt.Printf("  daemon failures: %d busy-rejected, %d deadline drops, %d malformed frames, %d panics recovered\n",
			stats.BusyRejected, stats.DeadlineDrops, stats.MalformedFrames, stats.PanicsRecovered)
	}
	if wrong > 0 {
		return fmt.Errorf("%d wrong payloads delivered", wrong)
	}
	return nil
}

// dialNetwork guesses unix vs tcp from the address shape.
func dialNetwork(addr string) string {
	if len(addr) > 0 && (addr[0] == '/' || addr[0] == '.') {
		return "unix"
	}
	return "tcp"
}
