// Command buzzd is the streaming decode daemon: many reader front ends
// stream collision slots at it over the wire protocol
// (internal/engine/wire) and get payload decisions back, all sessions
// decoding through the same session-manager engine the batch simulator
// runs on — the goldens pin that a streamed session and a batch trial
// at the same seed decide identically.
//
// Usage:
//
//	buzzd [-listen :4117] [-unix /run/buzzd.sock] [-http :8117]
//	      [-workers N] [-max-sessions N] [-drain-timeout 30s]
//
// The daemon serves the binary protocol on TCP (-listen) and/or a unix
// socket (-unix), and introspection over HTTP (-http): GET /statsz for
// the live counters as JSON, GET /healthz for liveness (503 while
// draining), and /debug/vars (expvar). On SIGINT/SIGTERM it stops
// accepting, lets live sessions finish for up to -drain-timeout, then
// force-closes what remains; a clean drain exits 0.
//
// Client mode replays a scenario spec against a running daemon and
// reports what came back — the loopback smoke check:
//
//	buzzd -connect localhost:4117 -replay examples/scenarios/mobility.json
//
// Every trial's payload decisions are verified against the ground-truth
// messages the replay client itself transmitted; any wrong payload
// exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bits"
	"repro/internal/engine"
	"repro/internal/engine/replay"
	"repro/internal/scenario"
)

func main() {
	listen := flag.String("listen", ":4117", "TCP address for the wire protocol (empty disables)")
	unixPath := flag.String("unix", "", "unix socket path for the wire protocol (empty disables)")
	httpAddr := flag.String("http", "", "HTTP introspection address: /statsz, /healthz, /debug/vars (empty disables)")
	workers := flag.Int("workers", 0, "decode shard workers (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrently live sessions (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for live sessions before force-closing")
	connect := flag.String("connect", "", "client mode: address of a running daemon")
	replayPath := flag.String("replay", "", "client mode: scenario spec to replay against -connect")
	flag.Parse()

	if *connect != "" || *replayPath != "" {
		if err := runClient(*connect, *replayPath); err != nil {
			fmt.Fprintln(os.Stderr, "buzzd:", err)
			os.Exit(1)
		}
		return
	}
	if err := runDaemon(*listen, *unixPath, *httpAddr, *workers, *maxSessions, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "buzzd:", err)
		os.Exit(1)
	}
}

func runDaemon(listen, unixPath, httpAddr string, workers, maxSessions int, drainTimeout time.Duration) error {
	if listen == "" && unixPath == "" {
		return fmt.Errorf("nothing to serve: both -listen and -unix are empty")
	}
	m := engine.New(engine.Config{Workers: workers, MaxSessions: maxSessions})
	srv := engine.NewServer(m, engine.ServerConfig{})

	var draining bool
	expvar.Publish("buzzd", expvar.Func(func() any { return m.Snapshot() }))

	serveErr := make(chan error, 3)
	var listeners []net.Listener
	addListener := func(network, addr string) error {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		listeners = append(listeners, ln)
		fmt.Printf("buzzd: serving %s on %s\n", network, ln.Addr())
		go func() { serveErr <- srv.Serve(ln) }()
		return nil
	}
	if listen != "" {
		if err := addListener("tcp", listen); err != nil {
			return err
		}
	}
	if unixPath != "" {
		os.Remove(unixPath)
		if err := addListener("unix", unixPath); err != nil {
			return err
		}
		defer os.Remove(unixPath)
	}

	var httpSrv *http.Server
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(m.Snapshot())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if draining {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		mux.Handle("/debug/vars", expvar.Handler())
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("buzzd: introspection on http://%s\n", hln.Addr())
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				serveErr <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("buzzd: %v — draining (timeout %v)\n", s, drainTimeout)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	draining = true
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if httpSrv != nil {
		httpSrv.Close()
	}
	snap := m.Snapshot()
	fmt.Printf("buzzd: drained — %d sessions served, %d slots, %d payloads, %d shed\n",
		snap.SessionsClosed, snap.SlotsIngested, snap.PayloadsAccepted, snap.SessionsShed)
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w (%d sessions force-closed)", drainErr, snap.ActiveSessions)
	}
	return nil
}

// runClient replays a scenario against a running daemon and scores the
// returned payloads against the messages it transmitted.
func runClient(addr, specPath string) error {
	if addr == "" || specPath == "" {
		return fmt.Errorf("client mode needs both -connect and -replay")
	}
	spec, err := scenario.Load(specPath)
	if err != nil {
		return err
	}
	crc, err := spec.CRCKind()
	if err != nil {
		return err
	}
	conn, err := net.Dial(dialNetwork(addr), addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	start := time.Now()
	results, err := replay.RunScenario(conn, spec)
	if err != nil {
		return err
	}
	delivered, wrong, retired := 0, 0, 0
	for _, tr := range results {
		pay := tr.Payloads(crc)
		for i, ok := range tr.Verified {
			if !ok {
				continue
			}
			delivered++
			if !pay[i].Equal(bits.Vector(tr.Messages[i])) {
				wrong++
			}
		}
		for _, r := range tr.Retired {
			if r {
				retired++
			}
		}
	}
	stats, err := replay.FetchStats(conn)
	if err != nil {
		return err
	}
	kTot := spec.TotalTags()
	fmt.Printf("scenario %q: %d trials x %d tags streamed in %.2fs\n",
		spec.Name, len(results), kTot, time.Since(start).Seconds())
	fmt.Printf("  delivered %d/%d payloads, %d wrong, %d retired by departure\n",
		delivered, len(results)*kTot, wrong, retired)
	fmt.Printf("  daemon: %d sessions open, %d opened, %d slots ingested, %d payloads, %d shed\n",
		stats.ActiveSessions, stats.SessionsOpened, stats.SlotsIngested, stats.PayloadsAccepted, stats.SessionsShed)
	if wrong > 0 {
		return fmt.Errorf("%d wrong payloads delivered", wrong)
	}
	return nil
}

// dialNetwork guesses unix vs tcp from the address shape.
func dialNetwork(addr string) string {
	if len(addr) > 0 && (addr[0] == '/' || addr[0] == '.') {
		return "unix"
	}
	return "tcp"
}
