package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary re-exec as buzzsim itself: with
// BUZZSIM_BE_MAIN set the process runs main() — flags, os.Exit and all
// — so the error-path tests below observe real exit codes and stderr,
// not a unit-level approximation.
func TestMain(m *testing.M) {
	if os.Getenv("BUZZSIM_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runBuzzsim re-execs the test binary as buzzsim with args.
func runBuzzsim(t *testing.T, args ...string) (exitCode int, stderr string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "BUZZSIM_BE_MAIN=1")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	err = cmd.Run()
	if err == nil {
		return 0, errBuf.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("buzzsim %v: %v", args, err)
	}
	return ee.ExitCode(), errBuf.String()
}

// TestCheckRejectsMalformedSpecs pins buzzsim's spec pre-flight: a
// malformed workload file must exit non-zero with a validation message
// naming the problem, never run silently on a misread spec.
func TestCheckRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantMsg string
	}{
		{
			name:    "unknown top-level field",
			spec:    `{"k": 4, "trials": 2, "seed": 1, "snr_low_db": 10}`,
			wantMsg: "snr_low_db",
		},
		{
			name:    "trailing content after the spec object",
			spec:    `{"k": 4, "trials": 2, "seed": 1} {"k": 8}`,
			wantMsg: "trailing content",
		},
		{
			name:    "trailing garbage token",
			spec:    `{"k": 4, "trials": 2, "seed": 1}]`,
			wantMsg: "trailing content",
		},
		{
			name:    "structurally invalid value",
			spec:    `{"k": 0, "trials": 2, "seed": 1}`,
			wantMsg: "k",
		},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "spec.json")
			if err := os.WriteFile(path, []byte(tc.spec), 0o644); err != nil {
				t.Fatal(err)
			}
			code, stderr := runBuzzsim(t, "-check", "-scenario", path)
			if code == 0 {
				t.Fatalf("buzzsim -check accepted a malformed spec\nspec: %s", tc.spec)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.wantMsg)
			}
		})
	}
}

// TestCheckAcceptsValidSpec is the control: -check on a well-formed
// spec exits 0.
func TestCheckAcceptsValidSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"k": 4, "trials": 2, "seed": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, stderr := runBuzzsim(t, "-check", "-scenario", path); code != 0 {
		t.Fatalf("valid spec rejected: exit %d, stderr %q", code, stderr)
	}
}
