package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary re-exec as buzzsim itself: with
// BUZZSIM_BE_MAIN set the process runs main() — flags, os.Exit and all
// — so the error-path tests below observe real exit codes and stderr,
// not a unit-level approximation.
func TestMain(m *testing.M) {
	if os.Getenv("BUZZSIM_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runBuzzsim re-execs the test binary as buzzsim with args.
func runBuzzsim(t *testing.T, args ...string) (exitCode int, stderr string) {
	t.Helper()
	code, _, errOut := runBuzzsimFull(t, args...)
	return code, errOut
}

// runBuzzsimFull is runBuzzsim with stdout capture, for tests that
// assert on report output.
func runBuzzsimFull(t *testing.T, args ...string) (exitCode int, stdout, stderr string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "BUZZSIM_BE_MAIN=1")
	var outBuf, errBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err = cmd.Run()
	if err == nil {
		return 0, outBuf.String(), errBuf.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("buzzsim %v: %v", args, err)
	}
	return ee.ExitCode(), outBuf.String(), errBuf.String()
}

// writeSpec drops a spec file into a temp dir and returns its path.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckRejectsMalformedSpecs pins buzzsim's spec pre-flight: a
// malformed workload file must exit non-zero with a validation message
// naming the problem, never run silently on a misread spec.
func TestCheckRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantMsg string
	}{
		{
			name:    "unknown top-level field",
			spec:    `{"k": 4, "trials": 2, "seed": 1, "snr_low_db": 10}`,
			wantMsg: "snr_low_db",
		},
		{
			name:    "trailing content after the spec object",
			spec:    `{"k": 4, "trials": 2, "seed": 1} {"k": 8}`,
			wantMsg: "trailing content",
		},
		{
			name:    "trailing garbage token",
			spec:    `{"k": 4, "trials": 2, "seed": 1}]`,
			wantMsg: "trailing content",
		},
		{
			name:    "structurally invalid value",
			spec:    `{"k": 0, "trials": 2, "seed": 1}`,
			wantMsg: "k",
		},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "spec.json")
			if err := os.WriteFile(path, []byte(tc.spec), 0o644); err != nil {
				t.Fatal(err)
			}
			code, stderr := runBuzzsim(t, "-check", "-scenario", path)
			if code == 0 {
				t.Fatalf("buzzsim -check accepted a malformed spec\nspec: %s", tc.spec)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.wantMsg)
			}
		})
	}
}

// TestCheckAcceptsValidSpec is the control: -check on a well-formed
// spec exits 0.
func TestCheckAcceptsValidSpec(t *testing.T) {
	path := writeSpec(t, `{"k": 4, "trials": 2, "seed": 1}`)
	if code, stderr := runBuzzsim(t, "-check", "-scenario", path); code != 0 {
		t.Fatalf("valid spec rejected: exit %d, stderr %q", code, stderr)
	}
}

// TestSubcommandCheck exercises the v2 spelling of the pre-flight:
// `buzzsim check <spec>` accepts valid specs (both schema versions),
// rejects malformed ones with the same diagnostics as the legacy path,
// and complains about usage when the spec path is missing.
func TestSubcommandCheck(t *testing.T) {
	v1 := writeSpec(t, `{"k": 4, "trials": 2, "seed": 1}`)
	if code, stderr := runBuzzsim(t, "check", v1); code != 0 {
		t.Fatalf("check rejected valid v1 spec: exit %d, stderr %q", code, stderr)
	}
	v2 := writeSpec(t, `{"version": 2, "trials": 2, "seed": 1, "workload": {"k": 4}}`)
	if code, stderr := runBuzzsim(t, "check", v2); code != 0 {
		t.Fatalf("check rejected valid v2 spec: exit %d, stderr %q", code, stderr)
	}
	bad := writeSpec(t, `{"version": 2, "trials": 2, "workload": {"k": 0}}`)
	if code, stderr := runBuzzsim(t, "check", bad); code == 0 || !strings.Contains(stderr, "k") {
		t.Fatalf("check accepted k=0 spec: exit %d, stderr %q", code, stderr)
	}
	if code, stderr := runBuzzsim(t, "check"); code == 0 || !strings.Contains(stderr, "usage") {
		t.Fatalf("check with no spec path: exit %d, stderr %q", code, stderr)
	}
}

// TestSubcommandRun pins the `buzzsim run <spec>` spelling on a tiny
// scenario: exit 0 and a scheme line on stdout.
func TestSubcommandRun(t *testing.T) {
	path := writeSpec(t, `{"k": 2, "trials": 1, "seed": 7}`)
	code, stdout, stderr := runBuzzsimFull(t, "run", path)
	if code != 0 {
		t.Fatalf("run failed: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "scenario ") || !strings.Contains(stdout, "delivered correct") {
		t.Fatalf("run output missing scheme summary:\n%s", stdout)
	}
}

// sweepTestSpec is a fast arrivals+slo spec for the sweep CLI tests.
const sweepTestSpec = `{
	"version": 2, "name": "cli-sweep", "trials": 2, "seed": 20268,
	"workload": {"k": 2, "arrivals": {"process": "poisson", "rate": 0.2, "count": 4, "dwell": 48}},
	"decode": {"max_slots": 400},
	"slo": {"p99_completion_slots": 10, "rate_lo": 0.05, "rate_hi": 0.8, "probes": 2}
}`

// TestSubcommandSweep runs the same capacity sweep twice and requires
// byte-identical reports — the CLI half of the reproducibility
// contract — then pins the misuse diagnostics.
func TestSubcommandSweep(t *testing.T) {
	path := writeSpec(t, sweepTestSpec)
	code, out1, stderr := runBuzzsimFull(t, "sweep", path)
	if code != 0 {
		t.Fatalf("sweep failed: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out1, "capacity report:") || !strings.Contains(out1, "max sustainable rate:") {
		t.Fatalf("sweep output missing report:\n%s", out1)
	}
	_, out2, _ := runBuzzsimFull(t, "sweep", path)
	if out1 != out2 {
		t.Fatalf("sweep reports differ between runs:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	// A -seed override must change the report header, not crash.
	code, out3, stderr := runBuzzsimFull(t, "sweep", "-seed", "777", path)
	if code != 0 {
		t.Fatalf("sweep -seed failed: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out3, "seed 777") {
		t.Fatalf("sweep -seed 777 report does not echo the seed:\n%s", out3)
	}

	noSLO := writeSpec(t, `{"version": 2, "trials": 2, "seed": 1,
		"workload": {"k": 2, "arrivals": {"process": "poisson", "rate": 0.2, "count": 4}}}`)
	if code, stderr := runBuzzsim(t, "sweep", noSLO); code == 0 || !strings.Contains(stderr, "slo") {
		t.Fatalf("sweep without slo: exit %d, stderr %q", code, stderr)
	}
	noArrivals := writeSpec(t, `{"k": 2, "trials": 2, "seed": 1}`)
	if code, stderr := runBuzzsim(t, "sweep", noArrivals); code == 0 || !strings.Contains(stderr, "arrivals") {
		t.Fatalf("sweep without arrivals: exit %d, stderr %q", code, stderr)
	}
	if code, stderr := runBuzzsim(t, "sweep"); code == 0 || !strings.Contains(stderr, "usage") {
		t.Fatalf("sweep with no spec path: exit %d, stderr %q", code, stderr)
	}
}

// TestLegacyFlagShim pins that the pre-subcommand spellings still work
// and print a deprecation note to stderr while exiting with the same
// code the subcommand would.
func TestLegacyFlagShim(t *testing.T) {
	path := writeSpec(t, `{"k": 2, "trials": 1, "seed": 7}`)

	code, stderr := runBuzzsim(t, "-check", "-scenario", path)
	if code != 0 {
		t.Fatalf("legacy -check -scenario failed: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "deprecated") || !strings.Contains(stderr, "buzzsim check") {
		t.Fatalf("legacy -check did not point at `buzzsim check`: stderr %q", stderr)
	}

	code, legacyOut, stderr := runBuzzsimFull(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("legacy -scenario failed: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "deprecated") || !strings.Contains(stderr, "buzzsim run") {
		t.Fatalf("legacy -scenario did not point at `buzzsim run`: stderr %q", stderr)
	}
	// The shim must produce the same stdout as the subcommand — CI
	// parsers see no difference between the spellings.
	_, newOut, _ := runBuzzsimFull(t, "run", path)
	if legacyOut != newOut {
		t.Fatalf("legacy and subcommand stdout differ:\nlegacy:\n%s\nnew:\n%s", legacyOut, newOut)
	}
}
