// Command buzzsim runs one Buzz session end to end from flags and prints
// a per-tag report: identification, the rateless data phase, and the
// aggregate rate achieved.
//
// Usage:
//
//	buzzsim [-k 8] [-snr-lo 14] [-snr-hi 30] [-bytes 4] [-seed 1] [-periodic]
//
// Example:
//
//	$ buzzsim -k 12 -snr-lo 8 -snr-hi 20
//	identification: K̂=12, 289 slots, 4.61 ms, 12/12 identified
//	transfer: 17 slots, 7.86 ms, 0.71 bits/symbol
//	tag 0xe9c0000: delivered at slot 3, payload 74616730
//	...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/buzz"
)

func main() {
	k := flag.Int("k", 8, "number of tags with data")
	snrLo := flag.Float64("snr-lo", 14, "lower bound of the per-tag SNR band (dB)")
	snrHi := flag.Float64("snr-hi", 30, "upper bound of the per-tag SNR band (dB)")
	nBytes := flag.Int("bytes", 4, "payload size per tag in bytes")
	seed := flag.Uint64("seed", 1, "session seed (deterministic replay)")
	periodic := flag.Bool("periodic", false, "periodic network: skip identification (§4b)")
	flag.Parse()

	if *k < 1 || *nBytes < 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: -k and -bytes must be positive")
		os.Exit(2)
	}

	tags := make([]buzz.Tag, *k)
	for i := range tags {
		payload := make([]byte, *nBytes)
		for j := range payload {
			payload[j] = byte(i*31 + j*7 + 1)
		}
		tags[i] = buzz.Tag{ID: uint64(0xE9C0000 + i*7919), Payload: payload}
	}

	sess, err := buzz.NewSession(tags, buzz.Options{
		Seed:          *seed,
		Channel:       buzz.ChannelSpec{SNRLodB: *snrLo, SNRHidB: *snrHi},
		KnownSchedule: *periodic,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
		os.Exit(1)
	}

	if !*periodic {
		id, err := sess.Identify()
		if err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: identify: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("identification: K̂=%d, %d slots, %.2f ms, %d/%d identified\n",
			id.KEstimate, id.Slots, id.Millis, id.IdentifiedCount(), *k)
	}

	res, err := sess.TransferData()
	if err != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: transfer: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("transfer: %d slots, %.2f ms, %.2f bits/symbol, %d/%d delivered\n",
		res.Slots, res.Millis, res.BitsPerSymbol, res.Delivered(), *k)
	for i, tr := range res.Tags {
		switch {
		case tr.Delivered:
			fmt.Printf("tag %#x: delivered at slot %d, payload %x (snr %.1f dB)\n",
				tr.ID, tr.DecodedAtSlot, tr.Payload, sess.SNRdB(i))
		case tr.Identified:
			fmt.Printf("tag %#x: identified but NOT delivered (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
		default:
			fmt.Printf("tag %#x: NOT identified this round (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
		}
	}
}
