// Command buzzsim runs Buzz sessions and scenario workloads from the
// command line.
//
// Usage:
//
//	buzzsim run   <spec.json> [-repeat 1] [-cpuprofile out.prof] [-memprofile heap.prof]
//	buzzsim check <spec.json>
//	buzzsim sweep <spec.json> [-seed N]
//	buzzsim [-k 8] [-snr-lo 14] [-snr-hi 30] [-bytes 4] [-seed 1] [-periodic]
//	        [-repeat 1] [-cpuprofile out.prof] [-memprofile heap.prof]
//
// `run` executes a declarative scenario spec (see the README's "Writing
// scenario specs" section for the format) through the scenario engine.
// `check` parses and validates the spec (including the decode window
// and arrival-process fields) and prints a summary of what would run —
// no trials execute, so a misspelled field, an inverted SNR band or an
// impossible population event fails loudly here instead of after a
// long run. `sweep` binary-searches the maximum sustainable arrival
// rate of an arrival-process spec under its declared SLO and prints a
// reproducible capacity report.
//
// Without a subcommand, buzzsim runs one ad-hoc session end to end
// from flags and prints a per-tag report:
//
//	$ buzzsim -k 12 -snr-lo 8 -snr-hi 20
//	identification: K̂=12, 289 slots, 4.61 ms, 12/12 identified
//	transfer: 17 slots, 7.86 ms, 0.71 bits/symbol
//	tag 0xe9c0000: delivered at slot 3, payload 74616730
//	...
//
// Scenario output:
//
//	$ buzzsim run examples/scenarios/mobility.json
//	scenario "forklift-aisle": 24 trials, 10 tags (8 initial), channel gauss-markov, seed 31337
//	  buzz: 280.71 ms mean transfer, 4.96 lost, 0.01 bits/symbol, 5.04/10 delivered correct, 0 wrong
//
// With -repeat N the spec is parsed once and run N times, stepping the
// seed each run — the profiling loop for scenario paths:
//
//	$ buzzsim run examples/scenarios/mobility.json -repeat 200 -cpuprofile decode.prof
//	$ go tool pprof decode.prof
//
// The pre-subcommand spellings `-scenario spec.json` and `-check
// -scenario spec.json` still work and route to the same code, printing
// a deprecation note on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/buzz"
	"repro/internal/channel"
	"repro/internal/ratedapt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(cmdRun(os.Args[2:]))
		case "check":
			os.Exit(cmdCheck(os.Args[2:]))
		case "sweep":
			os.Exit(cmdSweep(os.Args[2:]))
		}
	}
	os.Exit(legacyMain())
}

// cmdRun is `buzzsim run <spec.json>`: the scenario engine from a file.
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("buzzsim run", flag.ExitOnError)
	repeat := fs.Int("repeat", 1, "run the scenario this many times, iterating the seed")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the full run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: usage: buzzsim run <spec.json> [-repeat N] [-cpuprofile f] [-memprofile f]")
		return 2
	}
	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: -repeat must be positive")
		return 2
	}
	return withProfiles(*cpuProfile, *memProfile, func() error {
		return runScenario(fs.Arg(0), *repeat)
	})
}

// cmdCheck is `buzzsim check <spec.json>`: validate, summarize, exit.
func cmdCheck(args []string) int {
	fs := flag.NewFlagSet("buzzsim check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: usage: buzzsim check <spec.json>")
		return 2
	}
	if err := checkScenario(fs.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
		return 1
	}
	return 0
}

// cmdSweep is `buzzsim sweep <spec.json>`: the SLO capacity sweep.
func cmdSweep(args []string) int {
	fs := flag.NewFlagSet("buzzsim sweep", flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "override the spec's seed (0 keeps the spec's own)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: usage: buzzsim sweep <spec.json> [-seed N]")
		return 2
	}
	spec, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
		return 1
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	rep, err := sim.Sweep(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
		return 1
	}
	fmt.Print(rep.Render())
	return 0
}

// legacyMain is the pre-subcommand flag interface, kept whole so every
// existing invocation — ad-hoc sessions and the deprecated -scenario /
// -check spellings — behaves exactly as before.
func legacyMain() int {
	k := flag.Int("k", 8, "number of tags with data")
	snrLo := flag.Float64("snr-lo", 14, "lower bound of the per-tag SNR band (dB)")
	snrHi := flag.Float64("snr-hi", 30, "upper bound of the per-tag SNR band (dB)")
	nBytes := flag.Int("bytes", 4, "payload size per tag in bytes")
	seed := flag.Uint64("seed", 1, "session seed (deterministic replay)")
	periodic := flag.Bool("periodic", false, "periodic network: skip identification (§4b)")
	scenarioPath := flag.String("scenario", "", "deprecated: use `buzzsim run <spec.json>`")
	check := flag.Bool("check", false, "deprecated: use `buzzsim check <spec.json>`")
	repeat := flag.Int("repeat", 1, "run the session (or scenario) this many times (iterating the seed); profiling runs want more samples than one session provides")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the full run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	flag.Parse()

	if *k < 1 || *nBytes < 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: -k, -bytes and -repeat must be positive")
		return 2
	}
	if *scenarioPath != "" {
		// The spec is the whole workload: session flags do not compose
		// with it, and silently ignoring an explicit -seed or -k would
		// hand a seed sweep N copies of the same realization.
		for _, name := range []string{"k", "snr-lo", "snr-hi", "bytes", "seed", "periodic"} {
			set := false
			flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
			if set {
				fmt.Fprintf(os.Stderr, "buzzsim: -%s does not apply with -scenario (set it in the spec file)\n", name)
				return 2
			}
		}
		// The note goes to stderr: scripts parse run reports off stdout.
		if *check {
			fmt.Fprintln(os.Stderr, "buzzsim: note: -check -scenario is deprecated; use `buzzsim check <spec.json>`")
		} else {
			fmt.Fprintln(os.Stderr, "buzzsim: note: -scenario is deprecated; use `buzzsim run <spec.json>`")
		}
	} else if *check {
		fmt.Fprintln(os.Stderr, "buzzsim: -check validates a spec file; it requires -scenario")
		return 2
	}
	if *check {
		if err := checkScenario(*scenarioPath); err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
			return 1
		}
		return 0
	}
	return withProfiles(*cpuProfile, *memProfile, func() error {
		if *scenarioPath != "" {
			return runScenario(*scenarioPath, *repeat)
		}
		return run(*k, *nBytes, *repeat, *seed, *snrLo, *snrHi, *periodic)
	})
}

// withProfiles brackets work with the optional CPU/heap profile
// teardown; every error path returns through it so profiles land even
// on failure.
func withProfiles(cpuProfile, memProfile string, work func() error) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "buzzsim: -cpuprofile: %v\n", err)
			return 1
		}
	}
	runErr := work()
	if cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if memProfile != "" {
		if err := writeHeapProfile(memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: -memprofile: %v\n", err)
			return 1
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", runErr)
		return 1
	}
	return 0
}

// checkScenario parses and validates a spec without running a single
// trial — the pre-flight for expensive workload files. scenario.Load
// already rejects unknown fields and inconsistent values with
// actionable messages; this adds a human summary of what would run so
// a typo that *is* valid JSON (say, a wrong rho) is visible too.
func checkScenario(path string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = path
	}
	fmt.Printf("spec OK: %q\n", name)
	fmt.Printf("  tags:       %d initial, %d roster total\n", spec.Workload.K, spec.TotalTags())
	fmt.Printf("  trials:     %d (seed %d, max %d slots, %d restarts)\n", spec.Trials, spec.Seed, spec.Decode.MaxSlots, spec.Decode.Restarts)
	fmt.Printf("  snr band:   %g..%g dB, agc %g\n", spec.Channel.SNRLodB, spec.Channel.SNRHidB, spec.Channel.AGCNoiseFraction)
	fmt.Printf("  payload:    %d bits + %s\n", spec.Workload.MessageBits, spec.Decode.CRC)
	switch spec.Channel.Kind {
	case scenario.KindBlockFading:
		fmt.Printf("  channel:    block-fading, block_len %d\n", spec.Channel.BlockLen)
	case scenario.KindGaussMarkov:
		if len(spec.Channel.PerTagRho) > 0 {
			fmt.Printf("  channel:    gauss-markov, per-tag rho %v\n", spec.Channel.PerTagRho)
		} else if a := spec.Workload.Arrivals; a != nil && a.RhoHi != 0 {
			fmt.Printf("  channel:    gauss-markov, rho band [%g, %g] drawn per tag\n", a.RhoLo, a.RhoHi)
		} else {
			fmt.Printf("  channel:    gauss-markov, rho %g\n", spec.Channel.Rho)
		}
	default:
		fmt.Printf("  channel:    static\n")
	}
	switch spec.Decode.Window {
	case scenario.WindowAuto:
		fmt.Printf("  window:     auto (from the channel's coherence time)\n")
	case scenario.WindowFixed:
		fmt.Printf("  window:     fixed, %d slots\n", spec.Decode.DecodeWindow)
	case scenario.WindowPerTag:
		mode := "hard retire"
		if spec.Decode.WindowSoft {
			mode = "soft down-weight"
		}
		fmt.Printf("  window:     per_tag (%s): %s\n", mode, perTagWindowSummary(spec))
	default:
		fmt.Printf("  window:     none (whole-round decode)\n")
	}
	if a := spec.Workload.Arrivals; a != nil {
		fmt.Printf("  arrivals:   %s, %g tags/slot, %d tags from slot %d", a.Process, a.Rate, a.Count, a.StartSlot)
		if a.Process == scenario.ArrivalBurst {
			fmt.Printf(", bursts of %d", a.BurstSize)
		}
		if a.Dwell > 0 {
			fmt.Printf(", dwell %d slots", a.Dwell)
		}
		fmt.Println()
		printArrivalSchedule(spec, a)
	}
	for _, e := range spec.Workload.Population {
		fmt.Printf("  population: slot %d: +%d/-%d\n", e.Slot, e.Arrive, e.Depart)
	}
	if slo := spec.SLO; slo != nil {
		fmt.Printf("  slo:        p99_completion_slots <= %d, max_wrong <= %d", slo.P99CompletionSlots, slo.MaxWrong)
		if slo.MinDeliveredFraction > 0 {
			fmt.Printf(", delivered >= %.4f", slo.MinDeliveredFraction)
		}
		if slo.RateLo > 0 {
			fmt.Printf(", sweep band [%g, %g]", slo.RateLo, slo.RateHi)
		}
		if len(slo.Readers) > 0 {
			fmt.Printf(", readers %v", slo.Readers)
		}
		fmt.Println()
	}
	fmt.Printf("  schemes:    %v\n", spec.Schemes)
	return nil
}

// printArrivalSchedule resolves the arrival schedule exactly as a run
// would (the same streaming iterator sim.Run consumes) and summarizes
// the offered roster: truncation at the slot budget, the dwell band,
// the re-identification mode and the latency estimator are all decided
// by the resolved schedule, so a spec that silently offers far fewer
// tags than its declared count (rate too low for max_slots) or that
// will charge simulated re-identification on a 50k roster is visible
// before the first trial runs.
func printArrivalSchedule(spec scenario.Spec, a *scenario.ArrivalSpec) {
	rost, err := spec.ResolveRoster()
	if err != nil {
		fmt.Printf("  schedule:   unavailable (%v)\n", err)
		return
	}
	offered := len(rost.Windows)
	scheduled := offered - spec.Workload.K
	lastArrive, departing, minDwell, maxDwell := 0, 0, 0, 0
	for _, w := range rost.Windows {
		lastArrive = max(lastArrive, w.ArriveSlot)
		if w.DepartSlot > 0 {
			d := w.DepartSlot - w.ArriveSlot
			if departing == 0 || d < minDwell {
				minDwell = d
			}
			maxDwell = max(maxDwell, d)
			departing++
		}
	}
	fmt.Printf("  schedule:   %d tags offered per trial (%d initial + %d arrivals", offered, spec.Workload.K, scheduled)
	if scheduled < a.Count {
		fmt.Printf("; %d of %d truncated at max_slots", a.Count-scheduled, a.Count)
	}
	fmt.Printf("), last arrival slot %d\n", lastArrive)
	if departing > 0 {
		fmt.Printf("  dwell:      %d/%d tags depart in-budget, dwell %d..%d slots\n", departing, offered, minDwell, maxDwell)
	}
	mode := "simulate (re-identification decoded per arrival burst)"
	if a.Reident == scenario.ReidentAnalytic {
		mode = "analytic (expected-slot budget, no per-burst decode)"
	}
	fmt.Printf("  reident:    %s\n", mode)
	if offered > stats.DefaultSketchBuffer {
		fmt.Printf("  estimator:  sketch (%d samples/trial > %d buffer; completion quantiles carry a rank-error bound)\n", offered, stats.DefaultSketchBuffer)
	} else {
		fmt.Printf("  estimator:  exact (%d samples/trial fit the %d-sample sketch buffer)\n", offered, stats.DefaultSketchBuffer)
	}
}

// perTagWindowSummary resolves the spec's per-tag windows exactly as
// the decode loop will (ratedapt.ResolveTagWindows over the spec's
// channel process — taps do not matter for coherence, so a zero-tap
// model suffices) and summarizes them: min/median/max over the finite
// windows plus the count of never-windowed tags. Spec authors see the
// effective policy without running a single trial. Arrival-process
// specs resolve their roster through the same streaming iterator a run
// uses, so any per-tag rho band draws match what the run would see.
func perTagWindowSummary(spec scenario.Spec) string {
	rost, err := spec.ResolveRoster()
	if err != nil {
		return fmt.Sprintf("unavailable (%v)", err)
	}
	k := len(rost.Windows)
	proc := spec.NewProcessRoster(channel.NewExact(make([]complex128, k), 1), 0, rost.Rho)
	wins := ratedapt.ResolveTagWindows(proc, spec.Decode.MaxSlots, k)
	if wins == nil {
		return "no tag ever windows (every channel outlives the slot budget)"
	}
	var finite []int
	unbounded := 0
	for _, w := range wins {
		if w > 0 {
			finite = append(finite, w)
		} else {
			unbounded++
		}
	}
	sort.Ints(finite)
	med := finite[len(finite)/2]
	if len(finite)%2 == 0 {
		med = (finite[len(finite)/2-1] + finite[len(finite)/2]) / 2
	}
	s := fmt.Sprintf("%d/%d tags windowed, coherence slots min %d, median %d, max %d",
		len(finite), k, finite[0], med, finite[len(finite)-1])
	if unbounded > 0 {
		s += fmt.Sprintf("; %d unbounded", unbounded)
	}
	return s
}

// runScenario parses the spec once and executes it repeat times,
// stepping the seed per run — the parse is hoisted out of the loop so
// profiling runs measure the engine, not JSON decoding.
func runScenario(path string, repeat int) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = path
	}
	for r := 0; r < repeat; r++ {
		runSpec := spec
		runSpec.Seed = spec.Seed + uint64(r)
		out, err := sim.Run(runSpec)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %q: %d trials, %d tags (%d initial), channel %s, seed %d\n",
			name, runSpec.Trials, runSpec.TotalTags(), runSpec.Workload.K, runSpec.Channel.Kind, runSpec.Seed)
		for _, sch := range out.Schemes {
			fmt.Printf("  %-4s: %6.2f ms mean transfer, %.2f lost, %.2f bits/symbol, %.2f/%d delivered correct, %d wrong\n",
				sch.Scheme, sch.TransferMillis.Mean, sch.Undecoded.Mean, sch.BitsPerSymbol.Mean,
				sch.DeliveredCorrect.Mean, runSpec.TotalTags(), sch.WrongPayload)
		}
		if out.Latency != nil {
			fmt.Printf("  latency: %s\n", out.Latency)
		}
	}
	return nil
}

func run(k, nBytes, repeat int, seed uint64, snrLo, snrHi float64, periodic bool) error {
	for r := 0; r < repeat; r++ {
		tags := make([]buzz.Tag, k)
		for i := range tags {
			payload := make([]byte, nBytes)
			for j := range payload {
				payload[j] = byte(i*31 + j*7 + 1)
			}
			tags[i] = buzz.Tag{ID: uint64(0xE9C0000 + i*7919), Payload: payload}
		}

		sess, err := buzz.NewSession(tags, buzz.Options{
			Seed:          seed + uint64(r),
			Channel:       buzz.ChannelSpec{SNRLodB: snrLo, SNRHidB: snrHi},
			KnownSchedule: periodic,
		})
		if err != nil {
			return err
		}

		if !periodic {
			id, err := sess.Identify()
			if err != nil {
				return fmt.Errorf("identify: %w", err)
			}
			fmt.Printf("identification: K̂=%d, %d slots, %.2f ms, %d/%d identified\n",
				id.KEstimate, id.Slots, id.Millis, id.IdentifiedCount(), k)
		}

		res, err := sess.TransferData()
		if err != nil {
			return fmt.Errorf("transfer: %w", err)
		}
		fmt.Printf("transfer: %d slots, %.2f ms, %.2f bits/symbol, %d/%d delivered\n",
			res.Slots, res.Millis, res.BitsPerSymbol, res.Delivered(), k)
		if repeat > 1 {
			continue // per-tag detail only makes sense for a single session
		}
		for i, tr := range res.Tags {
			switch {
			case tr.Delivered:
				fmt.Printf("tag %#x: delivered at slot %d, payload %x (snr %.1f dB)\n",
					tr.ID, tr.DecodedAtSlot, tr.Payload, sess.SNRdB(i))
			case tr.Identified:
				fmt.Printf("tag %#x: identified but NOT delivered (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
			default:
				fmt.Printf("tag %#x: NOT identified this round (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
			}
		}
	}
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
