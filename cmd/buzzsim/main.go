// Command buzzsim runs one Buzz session end to end from flags and prints
// a per-tag report: identification, the rateless data phase, and the
// aggregate rate achieved.
//
// Usage:
//
//	buzzsim [-k 8] [-snr-lo 14] [-snr-hi 30] [-bytes 4] [-seed 1] [-periodic]
//	        [-scenario spec.json] [-check] [-repeat 1]
//	        [-cpuprofile out.prof] [-memprofile heap.prof]
//
// With -check the spec is parsed and validated (including the decode
// window fields) and a summary of what would run is printed — no
// trials execute. A misspelled field, an inverted SNR band or an
// impossible population event fails loudly here instead of after a
// long run.
//
// Example:
//
//	$ buzzsim -k 12 -snr-lo 8 -snr-hi 20
//	identification: K̂=12, 289 slots, 4.61 ms, 12/12 identified
//	transfer: 17 slots, 7.86 ms, 0.71 bits/symbol
//	tag 0xe9c0000: delivered at slot 3, payload 74616730
//	...
//
// Declarative workloads run through the scenario engine (see the
// README's "Writing scenario specs" section for the format):
//
//	$ buzzsim -scenario examples/scenarios/mobility.json
//	scenario "forklift-aisle": 24 trials, 10 tags (8 initial), channel gauss-markov, seed 31337
//	  buzz: 280.71 ms mean transfer, 4.96 lost, 0.01 bits/symbol, 5.04/10 delivered correct, 0 wrong
//
// With -repeat N the spec is parsed once and run N times, stepping the
// seed each run — the profiling loop for scenario paths.
//
// Profiling the real decode loop (not just microbenches):
//
//	$ buzzsim -k 16 -repeat 200 -cpuprofile decode.prof
//	$ go tool pprof decode.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/buzz"
	"repro/internal/channel"
	"repro/internal/ratedapt"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	k := flag.Int("k", 8, "number of tags with data")
	snrLo := flag.Float64("snr-lo", 14, "lower bound of the per-tag SNR band (dB)")
	snrHi := flag.Float64("snr-hi", 30, "upper bound of the per-tag SNR band (dB)")
	nBytes := flag.Int("bytes", 4, "payload size per tag in bytes")
	seed := flag.Uint64("seed", 1, "session seed (deterministic replay)")
	periodic := flag.Bool("periodic", false, "periodic network: skip identification (§4b)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec (JSON) through the scenario engine instead of a single session")
	check := flag.Bool("check", false, "parse and validate the -scenario spec, print what it would run, and exit without running any trials")
	repeat := flag.Int("repeat", 1, "run the session (or scenario) this many times (iterating the seed); profiling runs want more samples than one session provides")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the full run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	flag.Parse()

	if *k < 1 || *nBytes < 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "buzzsim: -k, -bytes and -repeat must be positive")
		os.Exit(2)
	}
	if *scenarioPath != "" {
		// The spec is the whole workload: session flags do not compose
		// with it, and silently ignoring an explicit -seed or -k would
		// hand a seed sweep N copies of the same realization.
		for _, name := range []string{"k", "snr-lo", "snr-hi", "bytes", "seed", "periodic"} {
			set := false
			flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
			if set {
				fmt.Fprintf(os.Stderr, "buzzsim: -%s does not apply with -scenario (set it in the spec file)\n", name)
				os.Exit(2)
			}
		}
	} else if *check {
		fmt.Fprintln(os.Stderr, "buzzsim: -check validates a spec file; it requires -scenario")
		os.Exit(2)
	}
	if *check {
		if err := checkScenario(*scenarioPath); err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	// Profile teardown must run before exiting, so the session work
	// lives in run() and every error path returns through it.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "buzzsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	var runErr error
	if *scenarioPath != "" {
		runErr = runScenario(*scenarioPath, *repeat)
	} else {
		runErr = run(*k, *nBytes, *repeat, *seed, *snrLo, *snrHi, *periodic)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "buzzsim: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "buzzsim: %v\n", runErr)
		os.Exit(1)
	}
}

// checkScenario parses and validates a spec without running a single
// trial — the pre-flight for expensive workload files. scenario.Load
// already rejects unknown fields and inconsistent values with
// actionable messages; this adds a human summary of what would run so
// a typo that *is* valid JSON (say, a wrong rho) is visible too.
func checkScenario(path string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = path
	}
	fmt.Printf("spec OK: %q\n", name)
	fmt.Printf("  tags:       %d initial, %d roster total\n", spec.K, spec.TotalTags())
	fmt.Printf("  trials:     %d (seed %d, max %d slots, %d restarts)\n", spec.Trials, spec.Seed, spec.MaxSlots, spec.Restarts)
	fmt.Printf("  snr band:   %g..%g dB, agc %g\n", spec.SNRLodB, spec.SNRHidB, spec.AGCNoiseFraction)
	fmt.Printf("  payload:    %d bits + %s\n", spec.MessageBits, spec.CRC)
	switch spec.Channel.Kind {
	case scenario.KindBlockFading:
		fmt.Printf("  channel:    block-fading, block_len %d\n", spec.Channel.BlockLen)
	case scenario.KindGaussMarkov:
		if len(spec.Channel.PerTagRho) > 0 {
			fmt.Printf("  channel:    gauss-markov, per-tag rho %v\n", spec.Channel.PerTagRho)
		} else {
			fmt.Printf("  channel:    gauss-markov, rho %g\n", spec.Channel.Rho)
		}
	default:
		fmt.Printf("  channel:    static\n")
	}
	switch spec.Window {
	case scenario.WindowAuto:
		fmt.Printf("  window:     auto (from the channel's coherence time)\n")
	case scenario.WindowFixed:
		fmt.Printf("  window:     fixed, %d slots\n", spec.DecodeWindow)
	case scenario.WindowPerTag:
		mode := "hard retire"
		if spec.WindowSoft {
			mode = "soft down-weight"
		}
		fmt.Printf("  window:     per_tag (%s): %s\n", mode, perTagWindowSummary(spec))
	default:
		fmt.Printf("  window:     none (whole-round decode)\n")
	}
	for _, e := range spec.Population {
		fmt.Printf("  population: slot %d: +%d/-%d\n", e.Slot, e.Arrive, e.Depart)
	}
	fmt.Printf("  schemes:    %v\n", spec.Schemes)
	return nil
}

// perTagWindowSummary resolves the spec's per-tag windows exactly as
// the decode loop will (ratedapt.ResolveTagWindows over the spec's
// channel process — taps do not matter for coherence, so a zero-tap
// model suffices) and summarizes them: min/median/max over the finite
// windows plus the count of never-windowed tags. Spec authors see the
// effective policy without running a single trial.
func perTagWindowSummary(spec scenario.Spec) string {
	k := spec.TotalTags()
	proc := spec.NewProcess(channel.NewExact(make([]complex128, k), 1), 0)
	wins := ratedapt.ResolveTagWindows(proc, spec.MaxSlots, k)
	if wins == nil {
		return "no tag ever windows (every channel outlives the slot budget)"
	}
	var finite []int
	unbounded := 0
	for _, w := range wins {
		if w > 0 {
			finite = append(finite, w)
		} else {
			unbounded++
		}
	}
	sort.Ints(finite)
	med := finite[len(finite)/2]
	if len(finite)%2 == 0 {
		med = (finite[len(finite)/2-1] + finite[len(finite)/2]) / 2
	}
	s := fmt.Sprintf("%d/%d tags windowed, coherence slots min %d, median %d, max %d",
		len(finite), k, finite[0], med, finite[len(finite)-1])
	if unbounded > 0 {
		s += fmt.Sprintf("; %d unbounded", unbounded)
	}
	return s
}

// runScenario parses the spec once and executes it repeat times,
// stepping the seed per run — the parse is hoisted out of the loop so
// profiling runs measure the engine, not JSON decoding.
func runScenario(path string, repeat int) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = path
	}
	for r := 0; r < repeat; r++ {
		runSpec := spec
		runSpec.Seed = spec.Seed + uint64(r)
		out, err := sim.RunScenario(runSpec)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %q: %d trials, %d tags (%d initial), channel %s, seed %d\n",
			name, runSpec.Trials, runSpec.TotalTags(), runSpec.K, runSpec.Channel.Kind, runSpec.Seed)
		for _, sch := range out.Schemes {
			fmt.Printf("  %-4s: %6.2f ms mean transfer, %.2f lost, %.2f bits/symbol, %.2f/%d delivered correct, %d wrong\n",
				sch.Scheme, sch.TransferMillis.Mean, sch.Undecoded.Mean, sch.BitsPerSymbol.Mean,
				sch.DeliveredCorrect.Mean, runSpec.TotalTags(), sch.WrongPayload)
		}
	}
	return nil
}

func run(k, nBytes, repeat int, seed uint64, snrLo, snrHi float64, periodic bool) error {
	for r := 0; r < repeat; r++ {
		tags := make([]buzz.Tag, k)
		for i := range tags {
			payload := make([]byte, nBytes)
			for j := range payload {
				payload[j] = byte(i*31 + j*7 + 1)
			}
			tags[i] = buzz.Tag{ID: uint64(0xE9C0000 + i*7919), Payload: payload}
		}

		sess, err := buzz.NewSession(tags, buzz.Options{
			Seed:          seed + uint64(r),
			Channel:       buzz.ChannelSpec{SNRLodB: snrLo, SNRHidB: snrHi},
			KnownSchedule: periodic,
		})
		if err != nil {
			return err
		}

		if !periodic {
			id, err := sess.Identify()
			if err != nil {
				return fmt.Errorf("identify: %w", err)
			}
			fmt.Printf("identification: K̂=%d, %d slots, %.2f ms, %d/%d identified\n",
				id.KEstimate, id.Slots, id.Millis, id.IdentifiedCount(), k)
		}

		res, err := sess.TransferData()
		if err != nil {
			return fmt.Errorf("transfer: %w", err)
		}
		fmt.Printf("transfer: %d slots, %.2f ms, %.2f bits/symbol, %d/%d delivered\n",
			res.Slots, res.Millis, res.BitsPerSymbol, res.Delivered(), k)
		if repeat > 1 {
			continue // per-tag detail only makes sense for a single session
		}
		for i, tr := range res.Tags {
			switch {
			case tr.Delivered:
				fmt.Printf("tag %#x: delivered at slot %d, payload %x (snr %.1f dB)\n",
					tr.ID, tr.DecodedAtSlot, tr.Payload, sess.SNRdB(i))
			case tr.Identified:
				fmt.Printf("tag %#x: identified but NOT delivered (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
			default:
				fmt.Printf("tag %#x: NOT identified this round (snr %.1f dB)\n", tr.ID, sess.SNRdB(i))
			}
		}
	}
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
