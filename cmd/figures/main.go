// Command figures regenerates every table and figure of the paper's
// evaluation as aligned text tables. Each figure has a subcommand; with
// -fig all (the default) the whole evaluation is reproduced in order.
//
// Usage:
//
//	figures [-fig all|table12|2|3|7|8|9|10|11|12|13|14|headline] [-trials N] [-seed S]
//
// Absolute numbers depend on the simulated substrate (see DESIGN.md);
// the shapes — who wins, by what factor, where crossovers fall — are the
// reproduction targets recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/identify"
	"repro/internal/phy"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, table12, 2, 3, 7, 8, 9, 10, 11, 12, 13, 14, headline)")
	trials := flag.Int("trials", 10, "trials per data point (the paper uses 10 locations x 5 traces)")
	seed := flag.Uint64("seed", 2012, "base seed for reproducibility")
	flag.Parse()

	runners := map[string]func(int, uint64) error{
		"table12":  figTable12,
		"2":        fig2,
		"3":        fig3,
		"7":        fig7,
		"8":        fig8,
		"9":        fig9,
		"10":       fig10and11,
		"11":       fig10and11,
		"12":       fig12,
		"13":       fig13,
		"14":       fig14,
		"headline": figHeadline,
	}
	order := []string{"table12", "2", "3", "7", "8", "9", "10", "12", "13", "14", "headline"}

	if *fig == "all" {
		for _, name := range order {
			if err := runners[name](*trials, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if err := run(*trials, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func figTable12(_ int, _ uint64) error {
	header("Tables 1 & 2 (§3.2 toy example): collisions improve id distinguishability")
	fmt.Println("Transmit patterns (Table 1):")
	for i, p := range identify.ToyPatterns {
		fmt.Printf("  pattern %d: %d%d%d\n", i+1, p[0], p[1], p[2])
	}
	fmt.Println("Collision patterns (Table 2):")
	table := identify.ToyCollisionTable()
	fmt.Print("        ")
	for i := range identify.ToyPatterns {
		fmt.Printf("  %d%d%d", identify.ToyPatterns[i][0], identify.ToyPatterns[i][1], identify.ToyPatterns[i][2])
	}
	fmt.Println()
	for a := range table {
		fmt.Printf("  %d%d%d  ", identify.ToyPatterns[a][0], identify.ToyPatterns[a][1], identify.ToyPatterns[a][2])
		for b := range table[a] {
			fmt.Printf("  %s", table[a][b])
		}
		fmt.Println()
	}
	fmt.Printf("P(indistinguishable) option 1 (slot picking):    %.4f (paper: 1/3)\n", identify.ToyOption1FailureProbability())
	fmt.Printf("P(indistinguishable) option 2 (pattern picking): %.4f (paper: 1/4)\n", identify.ToyOption2FailureProbability())
	return nil
}

func fig2(_ int, seed uint64) error {
	header("Fig. 2: received signal levels — single tag vs two-tag collision")
	single, double := trace.CollisionLevels(seed)
	fmt.Printf("single tag:        %d distinct magnitude levels (paper: 2)\n", single)
	fmt.Printf("two-tag collision: %d distinct magnitude levels (paper: 4 — '00','01','10','11')\n", double)
	return nil
}

func fig3(_ int, seed uint64) error {
	header("Fig. 3: constellations — 1 tag = 2 points, 2 tags = 4 points")
	for k := 1; k <= 3; k++ {
		pts, minDist := trace.Constellation(k, seed)
		fmt.Printf("k=%d: %d constellation points, min pairwise distance %.3f\n", k, len(pts), minDist)
	}
	return nil
}

func fig7(_ int, seed uint64) error {
	header("Fig. 7: CDF of initial synchronization offset (µs)")
	const n = 2000
	src := prng.NewSource(seed)
	fmt.Printf("%-12s %-10s %-10s %-10s %-10s\n", "tag type", "p50", "p90", "p99", "max")
	for _, m := range []struct {
		name  string
		model phy.SyncOffsetModel
	}{
		{"Moo", phy.MooOffsets},
		{"commercial", phy.CommercialOffsets},
	} {
		draws := make([]float64, n)
		for i := range draws {
			draws[i] = m.model.Draw(src)
		}
		fmt.Printf("%-12s %-10.3f %-10.3f %-10.3f %-10.3f\n", m.name,
			stats.Percentile(draws, 50), stats.Percentile(draws, 90),
			stats.Percentile(draws, 99), stats.Percentile(draws, 100))
	}
	fmt.Println("(paper: p90 = 0.5 µs Moo, 0.3 µs commercial; max < 1 µs)")
	return nil
}

func fig8(_ int, seed uint64) error {
	header("Fig. 8: clock-drift misalignment over a 160-bit trace")
	uncorr, corr := trace.DriftAlignment(seed)
	fmt.Printf("without correction: %.0f%% of late-trace chips smeared (paper: ~50%% symbol misalignment)\n", uncorr*100)
	fmt.Printf("with correction:    %.0f%% of late-trace chips smeared (paper: aligned)\n", corr*100)
	return nil
}

func fig9(_ int, seed uint64) error {
	header("Fig. 9: decode progress — 14 tags, 96-bit messages")
	prog, err := sim.DecodeProgress(14, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-10s %-8s %-8s %-14s\n", "slot", "colliders", "new", "total", "bits/symbol")
	for _, p := range prog {
		fmt.Printf("%-6d %-10d %-8d %-8d %-14.2f\n", p.Slot, p.Colliders, p.NewlyDecoded, p.TotalDecoded, p.BitsPerSymbol)
	}
	fmt.Println("(paper: 11 of 14 in the first 4 slots, peak 2.75 b/s, final 1.4 b/s over 10 slots)")
	return nil
}

func fig10and11(trials int, seed uint64) error {
	header("Fig. 10 & 11: data-transfer time and message errors vs number of tags")
	fmt.Printf("%-4s | %-22s | %-22s | %-22s\n", "K", "BUZZ ms (lost) [b/s]", "TDMA ms (lost)", "CDMA ms (lost)")
	for _, k := range []int{4, 8, 12, 16} {
		out, err := sim.CompareDataPhase(sim.DataPhaseConfig{K: k, Trials: trials, Seed: seed + uint64(k), Profile: sim.DefaultProfile()})
		if err != nil {
			return err
		}
		b, t, c := out[0], out[1], out[2]
		fmt.Printf("%-4d | %6.2f (%4.2f) [%4.2f]   | %6.2f (%4.2f)         | %6.2f (%4.2f)\n",
			k,
			b.TransferMillis.Mean, b.Undecoded.Mean, b.BitsPerSymbol.Mean,
			t.TransferMillis.Mean, t.Undecoded.Mean,
			c.TransferMillis.Mean, c.Undecoded.Mean)
	}
	fmt.Println("(paper Fig. 10: Buzz ≈ half of TDMA/CDMA time; Fig. 11: Buzz 0 errors, CDMA worst and growing with K)")
	return nil
}

func fig12(trials int, seed uint64) error {
	header("Fig. 12: challenging channels — decoded tags and aggregate rate (K = 4)")
	out, err := sim.RunChallenging(trials, seed, sim.PaperBands)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s | %-14s %-12s | %-14s %-10s\n", "SNR band dB", "BUZZ decoded", "BUZZ b/s", "TDMA decoded", "TDMA b/s")
	for _, o := range out {
		fmt.Printf("(%2.0f-%2.0f)      | %-14.2f %-12.2f | %-14.2f %-10.2f\n",
			o.Band.LodB, o.Band.HidB, o.BuzzDecoded, o.BuzzRate, o.TDMADecoded, o.TDMARate)
	}
	fmt.Println("(paper: Buzz decodes all 4 in every band, sliding to 0.57 b/s; TDMA falls to 50% loss)")
	return nil
}

func fig13(trials int, seed uint64) error {
	header("Fig. 13: per-query energy (µJ) vs starting voltage (K = 8)")
	out, err := sim.RunEnergy(trials, seed, []float64{3, 4, 5})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-10s %-10s\n", "V0", "BUZZ", "TDMA", "CDMA")
	for _, o := range out {
		fmt.Printf("%-8.0f %-10.2f %-10.2f %-10.2f\n", o.StartingVolts, o.BuzzMicroJ, o.TDMAMicroJ, o.CDMAMicroJ)
	}
	fmt.Println("(paper: Buzz ≈ TDMA, CDMA far above; all grow with V0)")
	return nil
}

func fig14(trials int, seed uint64) error {
	header("Fig. 14: identification time (ms) vs number of tags")
	out, err := sim.RunIdentification(trials, seed, []int{4, 8, 12, 16})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-10s %-10s %-12s %-10s %-14s\n", "K", "BUZZ", "FSA", "FSA+known K", "BTree", "BUZZ identified")
	for _, o := range out {
		fmt.Printf("%-4d %-10.2f %-10.2f %-12.2f %-10.2f %-14.2f\n",
			o.K, o.BuzzMillis, o.FSAMillis, o.FSAKnownKMillis, o.BTreeMillis, o.BuzzIdentified)
	}
	last := out[len(out)-1]
	fmt.Printf("K=16 speedups: %.1fx over FSA, %.1fx over FSA+known K (paper: 5.5x, 4.5x)\n",
		last.FSAMillis/last.BuzzMillis, last.FSAKnownKMillis/last.BuzzMillis)
	return nil
}

func figHeadline(trials int, seed uint64) error {
	header("Headline (§1, §10): overall communication-efficiency gain")
	res, err := sim.RunHeadline(trials, seed)
	if err != nil {
		return err
	}
	fmt.Printf("identification speedup: %.1fx (paper: 5.5x)\n", res.IdentSpeedup)
	fmt.Printf("data-phase gain:        %.1fx (paper: 2x)\n", res.DataRateGain)
	fmt.Printf("overall improvement:    %.1fx (paper: 3.5x)\n", res.OverallSpeedup)
	return nil
}
