package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/buzz"
	"repro/internal/prng"
)

// The integration tests exercise the whole stack through the public API,
// the way a downstream user would.

func TestIntegrationFullPipeline(t *testing.T) {
	// The shopping-cart scenario end to end: K items out of a huge id
	// space, identification, then the rateless transfer, with payload
	// integrity verified byte for byte.
	src := prng.NewSource(1001)
	const k = 12
	var tags []buzz.Tag
	seen := map[uint64]bool{}
	for len(tags) < k {
		id := src.Uint64() % (1 << 40)
		if seen[id] {
			continue
		}
		seen[id] = true
		tags = append(tags, buzz.Tag{
			ID:      id,
			Payload: []byte(fmt.Sprintf("item%03d", len(tags))),
		})
	}
	sess, err := buzz.NewSession(tags, buzz.Options{Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.IdentifiedCount() < k-1 {
		t.Fatalf("identified %d of %d", id.IdentifiedCount(), k)
	}
	res, err := sess.TransferData()
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Tags {
		if !tr.Identified {
			continue // a duplicate temporary id this round; acceptable
		}
		if !tr.Delivered {
			t.Errorf("identified tag %d not delivered", i)
			continue
		}
		if !bytes.Equal(tr.Payload, tags[i].Payload) {
			t.Errorf("tag %d payload corrupted: %q != %q", i, tr.Payload, tags[i].Payload)
		}
	}
}

func TestIntegrationRepeatedRounds(t *testing.T) {
	// A periodic network reporting over several rounds: every round is
	// an independent session (fresh channel realization), and every
	// round must deliver everything — the reliability contract.
	for round := 0; round < 5; round++ {
		var tags []buzz.Tag
		for i := 0; i < 6; i++ {
			tags = append(tags, buzz.Tag{
				ID:      uint64(0xFEED + i),
				Payload: []byte{byte(round), byte(i), byte(round * i), 0x5A},
			})
		}
		sess, err := buzz.NewSession(tags, buzz.Options{
			Seed:          uint64(3000 + round),
			KnownSchedule: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.TransferData()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered() != 6 {
			t.Fatalf("round %d delivered %d of 6", round, res.Delivered())
		}
		for i, tr := range res.Tags {
			if !bytes.Equal(tr.Payload, tags[i].Payload) {
				t.Fatalf("round %d tag %d payload wrong", round, i)
			}
		}
	}
}

func TestIntegrationIdentifyRoundsAreFresh(t *testing.T) {
	// Re-running identification must use fresh temporary ids (new
	// session salt): two rounds on the same session are allowed to
	// resolve different subsets when ids collide, and must both work.
	var tags []buzz.Tag
	for i := 0; i < 8; i++ {
		tags = append(tags, buzz.Tag{ID: uint64(0xAB00 + i), Payload: []byte("pp")})
	}
	sess, err := buzz.NewSession(tags, buzz.Options{Seed: 555})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sess.Identify()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if a.IdentifiedCount() < 7 || b.IdentifiedCount() < 7 {
		t.Fatalf("rounds identified %d and %d of 8", a.IdentifiedCount(), b.IdentifiedCount())
	}
	// The latest round drives the transfer.
	res, err := sess.TransferData()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered() < b.IdentifiedCount() {
		t.Fatalf("delivered %d of %d identified", res.Delivered(), b.IdentifiedCount())
	}
}
