// Package repro's root bench harness: one benchmark per table and figure
// of the paper's evaluation, plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark prints the regenerated
// series through b.Log on the first iteration (visible with -v) and
// reports domain metrics via b.ReportMetric, so `go test -bench=.`
// doubles as the reproduction harness. cmd/figures prints the same
// series as readable tables.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/baseline/cdma"
	"repro/internal/baseline/fsa"
	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/cs"
	"repro/internal/dsp"
	"repro/internal/epc"
	"repro/internal/identify"
	"repro/internal/phy"
	"repro/internal/prng"
	"repro/internal/ratedapt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// --- Tables 1 & 2 -----------------------------------------------------------

func BenchmarkTable12_PatternToy(b *testing.B) {
	var opt1, opt2 float64
	for i := 0; i < b.N; i++ {
		opt1 = identify.ToyOption1FailureProbability()
		opt2 = identify.ToyOption2FailureProbability()
	}
	b.ReportMetric(opt1, "P-fail-option1")
	b.ReportMetric(opt2, "P-fail-option2")
}

// --- Fig. 2 & 3: collision levels and constellations ------------------------

func BenchmarkFig2_CollisionLevels(b *testing.B) {
	var single, double int
	for i := 0; i < b.N; i++ {
		single, double = trace.CollisionLevels(uint64(i))
	}
	b.ReportMetric(float64(single), "levels-1tag")
	b.ReportMetric(float64(double), "levels-2tags")
}

func BenchmarkFig3_Constellation(b *testing.B) {
	var n int
	var minDist float64
	for i := 0; i < b.N; i++ {
		pts, d := trace.Constellation(2, uint64(i))
		n, minDist = len(pts), d
	}
	b.ReportMetric(float64(n), "points-2tags")
	b.ReportMetric(minDist, "min-distance")
}

// --- Fig. 7: synchronization offsets ----------------------------------------

func BenchmarkFig7_SyncOffsetCDF(b *testing.B) {
	src := prng.NewSource(7)
	var p90 float64
	for i := 0; i < b.N; i++ {
		draws := make([]float64, 500)
		for j := range draws {
			draws[j] = phy.MooOffsets.Draw(src)
		}
		p90 = stats.Percentile(draws, 90)
	}
	b.ReportMetric(p90, "moo-p90-us")
}

// --- Fig. 8: clock drift -----------------------------------------------------

func BenchmarkFig8_ClockDrift(b *testing.B) {
	var uncorr, corr float64
	for i := 0; i < b.N; i++ {
		uncorr, corr = trace.DriftAlignment(uint64(i))
	}
	b.ReportMetric(uncorr, "smear-uncorrected")
	b.ReportMetric(corr, "smear-corrected")
}

// --- Fig. 9: decode progress --------------------------------------------------

func BenchmarkFig9_DecodeProgress(b *testing.B) {
	b.ReportAllocs()
	var peak, final float64
	for i := 0; i < b.N; i++ {
		prog, err := sim.DecodeProgress(14, uint64(17+i))
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, p := range prog {
			if p.BitsPerSymbol > peak {
				peak = p.BitsPerSymbol
			}
		}
		final = prog[len(prog)-1].BitsPerSymbol
	}
	b.ReportMetric(peak, "peak-bits/sym")
	b.ReportMetric(final, "final-bits/sym")
}

// --- Fig. 10 & 11: transfer time and errors -----------------------------------

func benchDataPhase(b *testing.B, k int) {
	b.ReportAllocs()
	var buzzMs, tdmaMs, cdmaMs, buzzLost, tdmaLost, cdmaLost float64
	for i := 0; i < b.N; i++ {
		out, err := sim.CompareDataPhase(sim.DataPhaseConfig{
			K: k, Trials: 5, Seed: uint64(100 + i), Profile: sim.DefaultProfile(),
		})
		if err != nil {
			b.Fatal(err)
		}
		buzzMs, tdmaMs, cdmaMs = out[0].TransferMillis.Mean, out[1].TransferMillis.Mean, out[2].TransferMillis.Mean
		buzzLost, tdmaLost, cdmaLost = out[0].Undecoded.Mean, out[1].Undecoded.Mean, out[2].Undecoded.Mean
	}
	b.ReportMetric(buzzMs, "buzz-ms")
	b.ReportMetric(tdmaMs, "tdma-ms")
	b.ReportMetric(cdmaMs, "cdma-ms")
	b.ReportMetric(buzzLost, "buzz-lost")
	b.ReportMetric(tdmaLost, "tdma-lost")
	b.ReportMetric(cdmaLost, "cdma-lost")
}

func BenchmarkFig10_TransferTime_K4(b *testing.B)  { benchDataPhase(b, 4) }
func BenchmarkFig10_TransferTime_K8(b *testing.B)  { benchDataPhase(b, 8) }
func BenchmarkFig10_TransferTime_K12(b *testing.B) { benchDataPhase(b, 12) }
func BenchmarkFig10_TransferTime_K16(b *testing.B) { benchDataPhase(b, 16) }

// Fig. 11 shares the Fig. 10 sweep; this alias keeps the per-figure index
// one-to-one with bench targets.
func BenchmarkFig11_MessageErrors(b *testing.B) { benchDataPhase(b, 16) }

// --- Fig. 12: challenging channels ---------------------------------------------

func BenchmarkFig12_ChallengingChannels(b *testing.B) {
	var worstBuzzDecoded, worstTDMADecoded, worstBuzzRate float64
	for i := 0; i < b.N; i++ {
		out, err := sim.RunChallenging(4, uint64(7+i), []sim.ChallengingBand{{LodB: 19, HidB: 26}, {LodB: 4, HidB: 12}})
		if err != nil {
			b.Fatal(err)
		}
		worst := out[len(out)-1]
		worstBuzzDecoded, worstTDMADecoded, worstBuzzRate = worst.BuzzDecoded, worst.TDMADecoded, worst.BuzzRate
	}
	b.ReportMetric(worstBuzzDecoded, "buzz-decoded-of-4")
	b.ReportMetric(worstTDMADecoded, "tdma-decoded-of-4")
	b.ReportMetric(worstBuzzRate, "buzz-bits/sym")
}

// --- Fig. 13: energy -------------------------------------------------------------

func BenchmarkFig13_Energy(b *testing.B) {
	var buzzUJ, tdmaUJ, cdmaUJ float64
	for i := 0; i < b.N; i++ {
		out, err := sim.RunEnergy(3, uint64(11+i), []float64{3})
		if err != nil {
			b.Fatal(err)
		}
		buzzUJ, tdmaUJ, cdmaUJ = out[0].BuzzMicroJ, out[0].TDMAMicroJ, out[0].CDMAMicroJ
	}
	b.ReportMetric(buzzUJ, "buzz-uJ")
	b.ReportMetric(tdmaUJ, "tdma-uJ")
	b.ReportMetric(cdmaUJ, "cdma-uJ")
}

// --- Fig. 14: identification -------------------------------------------------------

func BenchmarkFig14_Identification(b *testing.B) {
	b.ReportAllocs()
	var buzzMs, fsaMs, fsakMs float64
	for i := 0; i < b.N; i++ {
		out, err := sim.RunIdentification(3, uint64(13+i), []int{16})
		if err != nil {
			b.Fatal(err)
		}
		buzzMs, fsaMs, fsakMs = out[0].BuzzMillis, out[0].FSAMillis, out[0].FSAKnownKMillis
	}
	b.ReportMetric(buzzMs, "buzz-ms")
	b.ReportMetric(fsaMs, "fsa-ms")
	b.ReportMetric(fsakMs, "fsa-knownK-ms")
	b.ReportMetric(fsaMs/buzzMs, "speedup-x")
}

// --- Headline ---------------------------------------------------------------------

func BenchmarkHeadline_Overall(b *testing.B) {
	b.ReportAllocs()
	var res sim.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.RunHeadline(3, uint64(19+i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IdentSpeedup, "ident-speedup-x")
	b.ReportMetric(res.DataRateGain, "data-gain-x")
	b.ReportMetric(res.OverallSpeedup, "overall-x")
}

// --- Scenario engine ----------------------------------------------------------------

// benchScenario runs one declarative workload per iteration, stepping
// the seed; the scenario-engine paths these cover (block fading,
// Gauss–Markov retap, population churn with session growth) are the
// series BENCH_PR3.json records and CI gates.
func benchScenario(b *testing.B, spec scenario.Spec) {
	b.ReportAllocs()
	var lost, rate float64
	for i := 0; i < b.N; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		out, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		lost = out.Schemes[0].Undecoded.Mean
		rate = out.Schemes[0].BitsPerSymbol.Mean
	}
	b.ReportMetric(lost, "lost")
	b.ReportMetric(rate, "bits/sym")
}

func BenchmarkScenario_BlockFading_K8(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 4242,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind: scenario.KindBlockFading, BlockLen: 32,
			SNRLodB: 14, SNRHidB: 30,
		},
	})
}

func BenchmarkScenario_GaussMarkov_K8(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 4242,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind: scenario.KindGaussMarkov, Rho: 0.999,
			SNRLodB: 14, SNRHidB: 30,
		},
	})
}

// BenchmarkScenario_FastMobility_K8 is the coherence-windowed decode
// path end to end: Gauss–Markov drift at ρ = 0.9 with the auto window
// — per-slot RetapAll rebuilds plus per-slot Session.Retire. Transfers
// in this regime legitimately run long (margins are drift-limited), so
// the bench is expected to sit well above the slow-drift scenarios;
// benchguard gates it with a looser tolerance.
func BenchmarkScenario_FastMobility_K8(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 2026,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind: scenario.KindGaussMarkov, Rho: 0.9,
			SNRLodB: 14, SNRHidB: 30,
		},
		Decode: scenario.DecodeSpec{MaxSlots: 320, Window: scenario.WindowAuto},
	})
}

// BenchmarkScenario_MixedMobility_K8 is the per-tag-windowed decode
// path end to end: half the roster parked (ρ = 1), half moving at
// ρ = 0.9, each mover retiring its own rows (Session.RetireTag) while
// the parked tags keep their whole history. Like fast-mobility, the
// drift-limited transfers legitimately run long; benchguard gates it
// with a looser tolerance.
func BenchmarkScenario_MixedMobility_K8(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 2026,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind:      scenario.KindGaussMarkov,
			PerTagRho: []float64{1, 1, 1, 1, 0.9, 0.9, 0.9, 0.9},
			SNRLodB:   14, SNRHidB: 30,
		},
		Decode: scenario.DecodeSpec{MaxSlots: 320, Window: scenario.WindowPerTag},
	})
}

// BenchmarkScenario_MixedMobilitySoft_K8 is the soft sibling: stale
// rows down-weighted by the movers' banked drift ratio instead of
// removed — every slot rebuilds the weighted model, the upper end of
// the windowed cost spectrum (see PERFORMANCE.md).
func BenchmarkScenario_MixedMobilitySoft_K8(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 2026,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind:      scenario.KindGaussMarkov,
			PerTagRho: []float64{1, 1, 1, 1, 0.9, 0.9, 0.9, 0.9},
			SNRLodB:   14, SNRHidB: 30,
		},
		Decode: scenario.DecodeSpec{
			MaxSlots: 320, Window: scenario.WindowPerTag, WindowSoft: true,
		},
	})
}

func BenchmarkScenario_PopulationChurn(b *testing.B) {
	benchScenario(b, scenario.Spec{
		Trials: 5, Seed: 4242,
		Workload: scenario.WorkloadSpec{
			K: 6,
			Population: []scenario.PopulationEvent{
				{Slot: 5, Arrive: 2},
				{Slot: 9, Depart: 1},
			},
		},
		Channel: scenario.ChannelSpec{
			Kind: scenario.KindGaussMarkov, Rho: 0.998,
			SNRLodB: 14, SNRHidB: 30,
		},
		Decode: scenario.DecodeSpec{MaxSlots: 400},
	})
}

// BenchmarkBatchLockstep sweeps the lockstep trial batch width over a
// 16-trial block-fading workload: batch=1 is the scalar per-trial path,
// batch=4 runs four-lane chunks through bp.Batch.Decode, batch=16 packs
// the whole sweep into one fan. The slots/s metric is the paper-level
// throughput unit (collision slots decoded per second, summed across
// trials); scripts/bench.sh reruns the family at GOMAXPROCS 1 and 4 to
// record the core-scaling curve into BENCH_PR9.json. Outcomes are
// byte-identical across widths (TestLockstepBatchEquivalence), so the
// sweep measures pure scheduling/layout effects.
func BenchmarkBatchLockstep(b *testing.B) {
	spec := scenario.Spec{
		Trials: 16, Seed: 4242,
		Workload: scenario.WorkloadSpec{K: 8},
		Channel: scenario.ChannelSpec{
			Kind: scenario.KindBlockFading, BlockLen: 32,
			SNRLodB: 14, SNRHidB: 30,
		},
	}
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			var slots int
			for i := 0; i < b.N; i++ {
				s := spec
				s.Seed = spec.Seed + uint64(i)
				out, err := sim.Run(s, sim.WithTrialDetail(), sim.WithBatchSize(batch))
				if err != nil {
					b.Fatal(err)
				}
				slots = 0
				for _, tr := range out.Trials {
					slots += tr.SlotsUsed
				}
			}
			b.ReportMetric(float64(slots)*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}

// BenchmarkWarehouseSweepProbe is one capacity-sweep probe evaluation
// at the warehouse workload shape — Poisson arrivals over a
// Gauss–Markov channel with per-tag rho draws, finite dwell, analytic
// re-identification and whole-round decode — scaled down from
// examples/scenarios/warehouse.json so an op fits bench time. The
// streaming paths the warehouse-scale CI job depends on all engage
// here: the arrival schedule resolves through ArrivalStream (never
// materialized into per-tag windows up front), the dynamic lane
// refills from the same iterator, and the latency report aggregates
// completion samples. Besides allocs/op, the bench reports the
// post-GC live-heap delta across the whole run
// (runtime.ReadMemStats): the PR-10 memory model in PERFORMANCE.md
// tracks this number, which must stay flat as the offered count grows
// because the roster streams instead of materializing.
func BenchmarkWarehouseSweepProbe(b *testing.B) {
	spec := scenario.Spec{
		Version: 2, Name: "warehouse-probe", Trials: 2, Seed: 555001,
		Workload: scenario.WorkloadSpec{
			K: 8,
			Arrivals: &scenario.ArrivalSpec{
				Process: scenario.ArrivalPoisson, Rate: 0.35, Count: 120,
				Dwell: 96, RhoLo: 0.99995, RhoHi: 1,
				Reident: scenario.ReidentAnalytic,
			},
		},
		Channel: scenario.ChannelSpec{Kind: scenario.KindGaussMarkov},
		Decode:  scenario.DecodeSpec{MaxSlots: 800, CRC: "crc16"},
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	b.ReportAllocs()
	b.ResetTimer()
	var delivered, offered, wrong int
	for i := 0; i < b.N; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		out, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		delivered = out.Latency.TagsDelivered
		offered = out.Latency.TagsOffered
		wrong = out.Scheme(scenario.SchemeBuzz).WrongPayload
	}
	b.StopTimer()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	b.ReportMetric(float64(after.HeapAlloc)-float64(before.HeapAlloc), "live-heap-bytes")
	b.ReportMetric(float64(offered), "offered")
	b.ReportMetric(float64(delivered)/float64(offered), "delivered-frac")
	b.ReportMetric(float64(wrong), "wrong-payloads")
}

// --- Ablations ----------------------------------------------------------------------

// BenchmarkAblation_DSparsity sweeps the participation density of the
// rateless code: too sparse wastes slots, too dense breeds constellation
// ambiguity (§6d).
func BenchmarkAblation_DSparsity(b *testing.B) {
	for _, meanColliders := range []float64{2, 4, 5, 7} {
		b.Run(nameF("colliders", meanColliders), func(b *testing.B) {
			src := prng.NewSource(31)
			const k = 12
			var slots int
			var lost int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				msgs := make([]bits.Vector, k)
				for j := range msgs {
					msgs[j] = bits.Random(setup, 32)
				}
				ch := channel.NewFromSNRBand(k, 14, 30, setup)
				seeds := make([]uint64, k)
				for j := range seeds {
					seeds[j] = setup.Uint64()
				}
				d := meanColliders / float64(k)
				if d > ratedapt.MaxDensity {
					d = ratedapt.MaxDensity
				}
				res, err := ratedapt.Transfer(ratedapt.Config{
					Seeds: seeds, SessionSalt: setup.Uint64(), CRC: bits.CRC5,
					Density: d, Restarts: 2, MaxSlots: 40 * k,
				}, msgs, ch, setup.Fork(1), setup.Fork(2))
				if err != nil {
					b.Fatal(err)
				}
				slots = res.SlotsUsed
				lost = res.Lost()
			}
			b.ReportMetric(float64(slots), "slots")
			b.ReportMetric(float64(lost), "lost")
		})
	}
}

// BenchmarkAblation_CSSolver compares the stage-C sparse solvers.
func BenchmarkAblation_CSSolver(b *testing.B) {
	src := prng.NewSource(33)
	const rows, cols, k = 60, 80, 8
	a := dsp.NewMat(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if src.Bool() {
				a.Set(r, c, 1)
			}
		}
	}
	truth := dsp.NewVec(cols)
	perm := src.Perm(cols)
	for _, c := range perm[:k] {
		truth[c] = complex(0.5+src.Float64(), src.Float64())
	}
	y := a.MulVec(truth)
	for i := range y {
		y[i] += src.ComplexNorm() * complex(0.05, 0)
	}

	b.Run("OMP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.OMP(a, y, cs.OMPOptions{MaxSparsity: k + 4, ResidualTol: 0.05, MinCoeffMag: 0.2, DCAtom: true}); err != nil && err != cs.ErrNoConvergence {
				b.Fatal(err)
			}
		}
	})
	b.Run("ISTA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.ISTA(a, y, cs.ISTAOptions{Lambda: 0.05, MaxIterations: 500}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Buckets sweeps the identification parameters a and c
// (paper §5D: a trades decoding complexity against air time; c trades
// bucket count against candidate-set size).
func BenchmarkAblation_Buckets(b *testing.B) {
	for _, cParam := range []int{5, 10, 20} {
		b.Run(nameI("c", cParam), func(b *testing.B) {
			src := prng.NewSource(35)
			const k = 12
			var slots, candidates int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				ids := make([]uint64, k)
				for j := range ids {
					ids[j] = setup.Uint64()
				}
				ch := channel.NewFromSNRBand(k, 15, 25, setup)
				res, err := identify.Run(identify.Config{Salt: setup.Uint64(), C: cParam}, ids, ch, setup.Fork(1))
				if err != nil {
					b.Fatal(err)
				}
				slots = res.TotalSlots
				candidates = res.Candidates
			}
			b.ReportMetric(float64(slots), "slots")
			b.ReportMetric(float64(candidates), "candidates")
		})
	}
}

// BenchmarkAblation_KEst sweeps the stage-A slots-per-step parameter
// (paper: s = 4; our default 8 — see identify.Config).
func BenchmarkAblation_KEst(b *testing.B) {
	for _, s := range []int{4, 8, 16} {
		b.Run(nameI("s", s), func(b *testing.B) {
			src := prng.NewSource(37)
			const k = 16
			var estErr float64
			var slots int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				ids := make([]uint64, k)
				for j := range ids {
					ids[j] = setup.Uint64()
				}
				ch := channel.NewFromSNRBand(k, 15, 25, setup)
				res, err := identify.Run(identify.Config{Salt: setup.Uint64(), SlotsPerStep: s}, ids, ch, setup.Fork(1))
				if err != nil {
					b.Fatal(err)
				}
				diff := float64(res.KEstimate - k)
				if diff < 0 {
					diff = -diff
				}
				estErr = diff
				slots = res.KEstSlots
			}
			b.ReportMetric(estErr, "abs-K-error")
			b.ReportMetric(float64(slots), "stageA-slots")
		})
	}
}

// BenchmarkAblation_CDMASync isolates the orthogonality-erosion
// mechanism: CDMA with and without sync imperfections.
func BenchmarkAblation_CDMASync(b *testing.B) {
	for _, perfect := range []bool{false, true} {
		name := "realistic"
		if perfect {
			name = "perfect-sync"
		}
		b.Run(name, func(b *testing.B) {
			src := prng.NewSource(39)
			const k = 16
			var lost int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				msgs := make([]bits.Vector, k)
				for j := range msgs {
					msgs[j] = bits.Random(setup, 32)
				}
				ch := channel.NewFromSNRBand(k, 14, 30, setup)
				ch.AGCNoiseFraction = 0.002
				res, err := cdma.Run(cdma.Config{CRC: bits.CRC5, SyncPerfect: perfect}, msgs, ch, setup.Fork(1))
				if err != nil {
					b.Fatal(err)
				}
				lost = res.Lost()
			}
			b.ReportMetric(float64(lost), "lost-of-16")
		})
	}
}

// BenchmarkAblation_CRCFreeze compares the paper's acceptance rule (bare
// CRC check, then freeze) against this implementation's gated rule
// (margins + tie detection + confirmation). The bare rule is faster in
// slots but delivers wrong payloads: a 5-bit CRC false-accepts 1 in 32
// garbage frames, and near-zero signed subset sums of taps make some
// wrong frames CRC-consistent (see bp.Result.Ambiguous). The gated rule
// trades a few slots for zero wrong deliveries.
func BenchmarkAblation_CRCFreeze(b *testing.B) {
	for _, gated := range []bool{true, false} {
		name := "bare-crc"
		threshold := -1.0 // disables the margin gates
		if gated {
			name = "gated"
			threshold = 0
		}
		b.Run(name, func(b *testing.B) {
			src := prng.NewSource(43)
			const k = 8
			var slots, wrong, lost int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				msgs := make([]bits.Vector, k)
				for j := range msgs {
					msgs[j] = bits.Random(setup, 32)
				}
				ch := channel.NewFromSNRBand(k, 14, 30, setup)
				ch.AGCNoiseFraction = 0.002
				seeds := make([]uint64, k)
				for j := range seeds {
					seeds[j] = setup.Uint64()
				}
				res, err := ratedapt.Transfer(ratedapt.Config{
					Seeds: seeds, SessionSalt: setup.Uint64(), CRC: bits.CRC5,
					Restarts: 2, MaxSlots: 40 * k, MarginThreshold: threshold,
				}, msgs, ch, setup.Fork(1), setup.Fork(2))
				if err != nil {
					b.Fatal(err)
				}
				slots += res.SlotsUsed
				lost += res.Lost()
				for j, p := range res.Payloads(bits.CRC5) {
					if res.Verified[j] && !p.Equal(msgs[j]) {
						wrong++
					}
				}
			}
			n := float64(b.N)
			b.ReportMetric(float64(slots)/n, "slots")
			b.ReportMetric(float64(wrong)/n, "wrong-payloads")
			b.ReportMetric(float64(lost)/n, "lost")
		})
	}
}

// BenchmarkAblation_FSAKnownK quantifies what the K estimate alone buys
// the EPC baseline (§10's 20-40%).
func BenchmarkAblation_FSAKnownK(b *testing.B) {
	for _, known := range []bool{false, true} {
		name := "plain"
		if known {
			name = "known-K"
		}
		b.Run(name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				cfg := fsa.Config{}
				if known {
					cfg = fsa.KnownKConfig(16)
				}
				res, err := fsa.Run(cfg, 16, prng.NewSource(uint64(41+i)))
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Time.Millis()
			}
			b.ReportMetric(ms, "ms")
		})
	}
}

func nameF(prefix string, v float64) string {
	return fmt.Sprintf("%s=%g", prefix, v)
}

func nameI(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

// BenchmarkExtension_SilenceACK measures the design alternative §8.2
// weighs and rejects: ACKing each decoded tag so it stops colliding.
// The paper's back-of-the-envelope estimate is a ~75% overhead on top of
// the uplink transfer time for 14 tags; the metric here is total air
// time (uplink slots + downlink ACKs) relative to Buzz's single-stop
// design.
func BenchmarkExtension_SilenceACK(b *testing.B) {
	for _, silence := range []bool{false, true} {
		name := "single-stop"
		if silence {
			name = "ack-silencing"
		}
		b.Run(name, func(b *testing.B) {
			src := prng.NewSource(45)
			const k = 14
			frameLen := 32 + bits.CRC5.Width()
			var totalMs float64
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				msgs := make([]bits.Vector, k)
				for j := range msgs {
					msgs[j] = bits.Random(setup, 32)
				}
				ch := channel.NewFromSNRBand(k, 14, 30, setup)
				ch.AGCNoiseFraction = 0.002
				seeds := make([]uint64, k)
				for j := range seeds {
					seeds[j] = setup.Uint64()
				}
				res, err := ratedapt.Transfer(ratedapt.Config{
					Seeds: seeds, SessionSalt: setup.Uint64(), CRC: bits.CRC5,
					Restarts: 2, MaxSlots: 40 * k, SilenceDecoded: silence,
				}, msgs, ch, setup.Fork(1), setup.Fork(2))
				if err != nil {
					b.Fatal(err)
				}
				var acct epc.TimeAccount
				acct.AddUplink(float64(res.SlotsUsed * frameLen))
				acct.AddDownlink(float64(res.AckDownlinkBits))
				acct.AddTurnaround(res.AckTurnarounds)
				totalMs += acct.Millis()
			}
			b.ReportMetric(totalMs/float64(b.N), "total-ms")
		})
	}
}

// BenchmarkExtension_SampledAir compares the idealized symbol-level air
// against full waveform synthesis with the §8.1 timing imperfections —
// the quantitative form of the paper's "negligible impact" claim.
func BenchmarkExtension_SampledAir(b *testing.B) {
	for _, sampled := range []bool{false, true} {
		name := "symbol-level"
		if sampled {
			name = "sampled+timing"
		}
		b.Run(name, func(b *testing.B) {
			src := prng.NewSource(47)
			const k = 8
			var slots, lost int
			for i := 0; i < b.N; i++ {
				setup := src.Fork(uint64(i))
				msgs := make([]bits.Vector, k)
				for j := range msgs {
					msgs[j] = bits.Random(setup, 32)
				}
				ch := channel.NewFromSNRBand(k, 15, 25, setup)
				seeds := make([]uint64, k)
				for j := range seeds {
					seeds[j] = setup.Uint64()
				}
				base := ratedapt.Config{
					Seeds: seeds, SessionSalt: setup.Uint64(), CRC: bits.CRC5,
					Restarts: 2, MaxSlots: 40 * k,
				}
				var res *ratedapt.Result
				var err error
				if sampled {
					res, err = ratedapt.TransferSampled(ratedapt.SampledConfig{Config: base}, msgs, ch, setup.Fork(1), setup.Fork(2))
				} else {
					res, err = ratedapt.Transfer(base, msgs, ch, setup.Fork(1), setup.Fork(2))
				}
				if err != nil {
					b.Fatal(err)
				}
				slots += res.SlotsUsed
				lost += res.Lost()
			}
			b.ReportMetric(float64(slots)/float64(b.N), "slots")
			b.ReportMetric(float64(lost)/float64(b.N), "lost")
		})
	}
}
